// Tests for the hardware MAC model (Fig 5 substrate) and the bit-true
// fixed-point arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "ccq/hw/fixed_point.hpp"
#include "ccq/hw/mac_model.hpp"
#include "ccq/quant/uniform.hpp"

namespace ccq::hw {
namespace {

TEST(MacCostTest, EnergyGrowsWithPrecision) {
  double prev = 0.0;
  for (int bits : {2, 3, 4, 6, 8, 16}) {
    const MacCost c = mac_cost(bits, bits);
    EXPECT_GT(c.energy_j, prev) << bits;
    prev = c.energy_j;
  }
}

TEST(MacCostTest, Fp32DominatesLowPrecision) {
  const MacCost fp = mac_cost(32, 32);
  const MacCost b2 = mac_cost(2, 2);
  const MacCost b4 = mac_cost(4, 4);
  const MacCost b8 = mac_cost(8, 8);
  // The paper reports fp32 MACs cost 4–56× more than quantized ones;
  // our structural model must land in that decade.
  EXPECT_GT(fp.energy_j / b2.energy_j, 20.0);
  EXPECT_LT(fp.energy_j / b2.energy_j, 80.0);
  EXPECT_GT(fp.energy_j / b8.energy_j, 4.0);
  EXPECT_GT(fp.energy_j / b4.energy_j, fp.energy_j / b8.energy_j);
}

TEST(MacCostTest, MixedPrecisionIsBetween) {
  const double e22 = mac_cost(2, 2).energy_j;
  const double e28 = mac_cost(2, 8).energy_j;
  const double e88 = mac_cost(8, 8).energy_j;
  EXPECT_GT(e28, e22);
  EXPECT_LT(e28, e88);
}

TEST(MacCostTest, AnyFp32SideSelectsFpUnit) {
  EXPECT_EQ(mac_cost(32, 4).gates, mac_cost(32, 32).gates);
  EXPECT_EQ(mac_cost(4, 32).gates, mac_cost(32, 32).gates);
}

TEST(MacCostTest, AreaAndLeakageScaleWithGates) {
  const MacCost a = mac_cost(2, 2);
  const MacCost b = mac_cost(8, 8);
  EXPECT_GT(b.area_um2, a.area_um2);
  EXPECT_GT(b.leakage_w, a.leakage_w);
  EXPECT_NEAR(b.area_um2 / a.area_um2, b.gates / a.gates, 1e-9);
}

TEST(MacCostTest, InvalidPrecisionThrows) {
  EXPECT_THROW(mac_cost(0, 4), Error);
  EXPECT_THROW(mac_cost(4, 0), Error);
}

std::vector<LayerMacs> three_layer_net() {
  return {
      {"first", 1000000, 32, 32},
      {"mid", 4000000, 2, 2},
      {"last", 500000, 32, 32},
  };
}

TEST(NetworkPowerTest, FpEdgesDominateQuantizedMiddle) {
  // The paper's Fig 5 headline: fp first/last layers consume 4–56× the
  // power of all the quantized middle layers combined.
  const PowerReport r = network_power(three_layer_net(), 100.0);
  const double edges = r.first_layer_w + r.last_layer_w;
  EXPECT_GT(edges / r.middle_w, 4.0);
  EXPECT_NEAR(r.total_w, edges + r.middle_w, r.total_w * 1e-9);
}

TEST(NetworkPowerTest, FullyQuantizedBeatsPartial) {
  auto partial = three_layer_net();
  auto full = three_layer_net();
  full[0].weight_bits = full[0].act_bits = 6;
  full[2].weight_bits = full[2].act_bits = 2;
  const double p_partial = network_power(partial, 100.0).total_w;
  const double p_full = network_power(full, 100.0).total_w;
  EXPECT_LT(p_full, p_partial / 3.0);
}

TEST(NetworkPowerTest, PowerScalesWithRate) {
  const auto layers = three_layer_net();
  const double p1 = network_power(layers, 100.0).total_w;
  const double p2 = network_power(layers, 200.0).total_w;
  EXPECT_GT(p2, 1.8 * p1);  // leakage breaks exact 2× linearity
}

TEST(NetworkPowerTest, ValidatesInput) {
  EXPECT_THROW(network_power({}, 100.0), Error);
  EXPECT_THROW(network_power(three_layer_net(), 0.0), Error);
}

TEST(FixedPointTest, EncodeDecodeRoundTripOnGrid) {
  FixedPointFormat fmt{.bits = 4, .scale = 0.25f};
  Tensor values({5}, std::vector<float>{-1.75f, -0.25f, 0.0f, 0.5f, 1.75f});
  const auto codes = encode(values, fmt);
  const Tensor back = decode(codes, values.shape(), fmt);
  EXPECT_EQ(max_abs_diff(back, values), 0.0f);
  EXPECT_TRUE(representable(values, fmt));
}

TEST(FixedPointTest, SaturatesOutOfRange) {
  FixedPointFormat fmt{.bits = 3, .scale = 1.0f};  // codes −3..3
  Tensor values({2}, std::vector<float>{10.0f, -10.0f});
  const auto codes = encode(values, fmt);
  EXPECT_EQ(codes[0], 3);
  EXPECT_EQ(codes[1], -3);
  EXPECT_FALSE(representable(values, fmt));
}

TEST(FixedPointTest, IntegerDotMatchesFloatOnQuantizedData) {
  // The crucial bit-exactness property: float "simulated quantization"
  // and the integer datapath agree.
  Rng rng(1);
  const int bits = 4;
  const float clip = 0.7f;
  const float scale = clip / quant::symmetric_levels(bits);
  Tensor w = quant::quantize_symmetric(Tensor::randn({256}, rng, 0.3f), bits,
                                       clip);
  Tensor x = quant::quantize_symmetric(Tensor::randn({256}, rng, 0.5f), bits,
                                       clip);
  FixedPointFormat fmt{.bits = bits, .scale = scale};
  ASSERT_TRUE(representable(w, fmt, 1e-5f));
  ASSERT_TRUE(representable(x, fmt, 1e-5f));
  const float hw_result = integer_dot(encode(w, fmt), fmt, encode(x, fmt), fmt);
  double sw_result = 0.0;
  for (std::size_t i = 0; i < 256; ++i) {
    sw_result += static_cast<double>(w.at(i)) * x.at(i);
  }
  EXPECT_NEAR(hw_result, sw_result, 1e-3f);
}

TEST(FixedPointTest, ValidatesFormat) {
  Tensor v({1});
  EXPECT_THROW(encode(v, {.bits = 1, .scale = 1.0f}), Error);
  EXPECT_THROW(encode(v, {.bits = 4, .scale = 0.0f}), Error);
  EXPECT_THROW(integer_dot({1, 2}, {}, {1}, {}), Error);
}

TEST(ProfileTest, UniformProfileRespectsEdgeFlag) {
  std::vector<LayerMacs> layers = three_layer_net();
  // Build a fake registry-free check through uniform_profile semantics by
  // constructing a real registry.
  quant::LayerRegistry reg{quant::BitLadder({8, 4, 2})};
  for (int i = 0; i < 3; ++i) {
    quant::QuantUnit u;
    u.name = "l" + std::to_string(i);
    u.weight_hook = std::make_shared<quant::MinMaxWeightHook>();
    u.weight_count = 100;
    u.macs = 1000;
    reg.add(std::move(u));
  }
  const auto fp_edges = uniform_profile(reg, 4, 4, /*fp_first_last=*/true);
  EXPECT_EQ(fp_edges[0].weight_bits, 32);
  EXPECT_EQ(fp_edges[1].weight_bits, 4);
  EXPECT_EQ(fp_edges[2].weight_bits, 32);
  const auto full = uniform_profile(reg, 4, 4, /*fp_first_last=*/false);
  EXPECT_EQ(full[0].weight_bits, 4);
  EXPECT_EQ(full[2].weight_bits, 4);
}

TEST(ProfileTest, RegistryProfileTracksCurrentBits) {
  quant::LayerRegistry reg{quant::BitLadder({8, 4, 2})};
  quant::QuantUnit u;
  u.name = "conv";
  u.weight_hook = std::make_shared<quant::MinMaxWeightHook>();
  u.weight_count = 100;
  u.macs = 5000;
  reg.add(std::move(u));
  reg.step_down(0);
  const auto profile = profile_registry(reg);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile[0].weight_bits, 4);
  EXPECT_EQ(profile[0].macs, 5000u);
}

// ---- fixed-point requantization ---------------------------------------------

TEST(RequantTest, RneShiftRoundsTiesToEven) {
  // Halves land on the even neighbour, both signs.
  EXPECT_EQ(rne_shift(1, 1), 0);    //  0.5 →  0
  EXPECT_EQ(rne_shift(3, 1), 2);    //  1.5 →  2
  EXPECT_EQ(rne_shift(5, 1), 2);    //  2.5 →  2
  EXPECT_EQ(rne_shift(-1, 1), 0);   // −0.5 →  0
  EXPECT_EQ(rne_shift(-3, 1), -2);  // −1.5 → −2
  EXPECT_EQ(rne_shift(-5, 1), -2);  // −2.5 → −2
  // Wider shifts: tie needs the remainder to be exactly half a ulp.
  EXPECT_EQ(rne_shift(12, 3), 2);   // 1.5   → 2 (tie, odd floor)
  EXPECT_EQ(rne_shift(20, 3), 2);   // 2.5   → 2 (tie, even floor)
  EXPECT_EQ(rne_shift(13, 3), 2);   // 1.625 → 2 (above half)
  EXPECT_EQ(rne_shift(11, 3), 1);   // 1.375 → 1 (below half)
  EXPECT_EQ(rne_shift(-12, 3), -2); // −1.5  → −2
  EXPECT_EQ(rne_shift(-20, 3), -2); // −2.5  → −2
}

TEST(RequantTest, RequantApplyClampsToTheCodeRange) {
  Requant r;
  ASSERT_TRUE(make_requant(1.0, 0.0, 1 << 20, r));
  EXPECT_EQ(requant_apply(-5, r, 255), 0);     // negative pre-activation
  EXPECT_EQ(requant_apply(7, r, 255), 7);      // identity inside the range
  EXPECT_EQ(requant_apply(9000, r, 255), 255); // saturates at qmax
}

TEST(RequantTest, MakeRequantApproximatesTheRatioTightly) {
  // A normalised multiplier carries >= 30 significant bits, so the
  // fixed-point ratio M·2^−shift tracks the real ratio to ~2^−31
  // relative — far below one output code over any in-budget range.
  for (double ratio : {1e-4, 0.37, 0.5, 1.0, 3.25, 1e3, -0.42}) {
    Requant r;
    ASSERT_TRUE(make_requant(ratio, 0.0, std::int64_t{1} << 20, r)) << ratio;
    EXPECT_GE(r.shift, 1);
    EXPECT_LE(r.shift, 62);
    const double approx = std::ldexp(static_cast<double>(r.multiplier),
                                     -r.shift);
    EXPECT_LE(std::fabs(approx - ratio), std::fabs(ratio) * 1e-9) << ratio;
  }
}

TEST(RequantTest, MakeRequantFoldsTheBias) {
  // bias_ratio pre-scales by 2^shift so the epilogue adds it in integer
  // form; check the reconstructed offset and an end-to-end apply.
  Requant r;
  ASSERT_TRUE(make_requant(0.5, 10.25, 1 << 20, r));
  const double back = std::ldexp(static_cast<double>(r.bias), -r.shift);
  EXPECT_NEAR(back, 10.25, 1e-9);
  EXPECT_EQ(requant_apply(100, r, 255), 60);  // 100·0.5 + 10.25 → 60.25 → 60
}

TEST(RequantTest, MakeRequantZeroScaleChannelYieldsZeroCodes) {
  // A dead channel (γ = 0 after BN folding) must still fuse: M = 0 and
  // every accumulator maps to code 0.
  Requant r;
  ASSERT_TRUE(make_requant(0.0, 0.0, std::int64_t{1} << 40, r));
  EXPECT_EQ(r.multiplier, 0);
  for (std::int64_t acc : {std::int64_t{-100000}, std::int64_t{0},
                           std::int64_t{1} << 40}) {
    EXPECT_EQ(requant_apply(acc, r, 255), 0) << acc;
  }
}

TEST(RequantTest, MakeRequantSupportsNegativeRatios) {
  // Negative folded scales (γ < 0) carry the sign in the multiplier.
  Requant r;
  ASSERT_TRUE(make_requant(-0.5, 4.0, 1 << 20, r));
  EXPECT_LT(r.multiplier, 0);
  EXPECT_EQ(requant_apply(4, r, 255), 2);   // −2 + 4 = 2
  EXPECT_EQ(requant_apply(-8, r, 255), 8);  //  4 + 4 = 8
}

TEST(RequantTest, MakeRequantRefusesOutOfBudgetParameters) {
  Requant r;
  // Non-finite inputs.
  EXPECT_FALSE(make_requant(std::numeric_limits<double>::quiet_NaN(), 0.0,
                            1 << 20, r));
  EXPECT_FALSE(make_requant(1.0, std::numeric_limits<double>::infinity(),
                            1 << 20, r));
  // Ratio too large for a 31-bit multiplier at shift >= 1.
  EXPECT_FALSE(make_requant(1e10, 0.0, 1 << 20, r));
  // Accumulator bound so large no multiplier stays inside 2^61.
  EXPECT_FALSE(make_requant(0.9, 0.0, std::int64_t{1} << 61, r));
  // Bias outside the 2^61 budget.
  EXPECT_FALSE(make_requant(1.0, 1e30, 1 << 20, r));
  // Negative bound marks an unfusable layer.
  EXPECT_FALSE(make_requant(1.0, 0.0, -1, r));
}

TEST(RequantTest, MakeRequantRespectsTheAccumulatorBudget) {
  // |acc·M| <= 2^61 for every |acc| <= acc_bound: the multiplier cap
  // shrinks as the bound grows.
  for (int log_bound : {20, 40, 55, 60}) {
    const std::int64_t bound = std::int64_t{1} << log_bound;
    Requant r;
    ASSERT_TRUE(make_requant(0.37, 0.1, bound, r)) << log_bound;
    const std::int64_t budget = std::int64_t{1} << 61;
    EXPECT_LE(std::abs(static_cast<std::int64_t>(r.multiplier)),
              budget / bound)
        << log_bound;
  }
}

}  // namespace
}  // namespace ccq::hw
