// Tests for ccq::serve: packed artifact round-trips, crash-safe writes,
// and the registry-routed inference server — admission control, flush
// triggers, drain/shutdown semantics and the headline property that
// served outputs are bit-identical to a direct integer forward for any
// worker count and batch composition.  Hot-swap and wire-protocol
// coverage live in serve_swap_test.cpp / serve_net_test.cpp.
//
// Labelled `serve` and run under the TSan quick tier
// (`CCQ_THREADS=4 ctest -L "parallel|telemetry|serve"`).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "ccq/common/fileio.hpp"
#include "ccq/core/snapshot.hpp"
#include "ccq/models/simple.hpp"
#include "ccq/serve/artifact.hpp"
#include "ccq/serve/harness.hpp"

namespace ccq::serve {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

Tensor make_inputs(std::size_t n, std::size_t channels = 3,
                   std::size_t hw = 8) {
  Tensor x({n, channels, hw, hw});
  auto data = x.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>((i * 2654435761u >> 8) & 255u) / 255.0f;
  }
  return x;
}

/// A small quantized CNN with a mixed 8/4/2 allocation (layer i sits at
/// ladder position i mod 3).  Untrained — serve correctness is about the
/// datapath, not accuracy — but forwarded once in train mode so
/// activation ranges are calibrated before compiling.
models::QuantModel make_mixed_model() {
  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4, 2}));
  quant::LayerRegistry& registry = model.registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    registry.set_ladder_pos(i, i % 3);
  }
  Workspace ws;
  model.set_training(true);
  model.forward(make_inputs(16), ws);
  model.set_training(false);
  return model;
}

float max_row_diff(const Tensor& row, const Tensor& batch, std::size_t i) {
  float diff = 0.0f;
  for (std::size_t c = 0; c < row.dim(0); ++c) {
    diff = std::max(diff, std::abs(row(c) - batch(i, c)));
  }
  return diff;
}

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

// ---- bit packing -----------------------------------------------------------

TEST(PackCodesTest, RoundTripsExactly) {
  const std::vector<std::vector<std::int32_t>> cases = {
      {0},
      {7, 7, 7, 7},
      {-6, -4, -2, 0, 2, 4, 6},          // doubled even (zero-centred grid)
      {-7, -5, -3, -1, 1, 3, 5, 7},      // doubled odd (half-offset grid)
      {-254, 254, 0, 2, -128, 130},      // 8-bit doubled extremes
      {1, -1, 1, -1, 1},
      {123456, -123456, 0},
  };
  for (const auto& codes : cases) {
    EXPECT_EQ(unpack_codes(pack_codes(codes)), codes);
  }
}

TEST(PackCodesTest, DoubledCodesPackAtNativeWidth) {
  // Doubled codes of a 4-bit symmetric grid: even values in [-14, 14].
  std::vector<std::int32_t> codes;
  for (int i = 0; i < 100; ++i) codes.push_back(2 * ((i % 15) - 7));
  const PackedCodes packed = pack_codes(codes);
  EXPECT_EQ(packed.divisor % 2, 0u);  // parity folded into the divisor
  EXPECT_LE(packed.bits, 4);
  EXPECT_LE(packed.packed_bytes(), (codes.size() * 4 + 7) / 8);
  EXPECT_EQ(unpack_codes(packed), codes);
}

TEST(PackCodesTest, ConstantVectorPacksToZeroBits) {
  const std::vector<std::int32_t> codes(1000, -42);
  const PackedCodes packed = pack_codes(codes);
  EXPECT_EQ(packed.bits, 0);
  EXPECT_TRUE(packed.bytes.empty());
  EXPECT_EQ(unpack_codes(packed), codes);
}

// ---- artifact round-trip ---------------------------------------------------

TEST(ArtifactTest, RoundTripIsBitIdentical) {
  auto model = make_mixed_model();
  hw::IntegerNetwork direct = hw::IntegerNetwork::compile(model);
  const std::string path = temp_path("ccq_serve_roundtrip.ccqa");
  export_artifact(direct, path);
  hw::IntegerNetwork loaded = load_artifact(path);

  ASSERT_EQ(loaded.layer_count(), direct.layer_count());
  for (std::size_t l = 0; l < direct.layer_count(); ++l) {
    const auto& a = direct.plan(l);
    const auto& b = loaded.plan(l);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.weight_bits, b.weight_bits);
    EXPECT_EQ(a.weight_codes, b.weight_codes);
    EXPECT_EQ(a.channel_scale, b.channel_scale);
    EXPECT_EQ(a.bias, b.bias);
    EXPECT_EQ(a.act_bits, b.act_bits);
    EXPECT_EQ(a.act_clip, b.act_clip);
    // The v2 requant record round-trips verbatim, and the rederived
    // integer fields (out_qmax / acc_bound) agree with the exporter's.
    EXPECT_EQ(a.requant_fused, b.requant_fused);
    EXPECT_EQ(a.out_qmax, b.out_qmax);
    EXPECT_EQ(a.acc_bound, b.acc_bound);
    ASSERT_EQ(a.requant.size(), b.requant.size());
    for (std::size_t c = 0; c < a.requant.size(); ++c) {
      EXPECT_EQ(a.requant[c].multiplier, b.requant[c].multiplier);
      EXPECT_EQ(a.requant[c].shift, b.requant[c].shift);
      EXPECT_EQ(a.requant[c].bias, b.requant[c].bias);
    }
  }

  const Tensor x = make_inputs(20);
  EXPECT_EQ(max_abs_diff(direct.forward(x), loaded.forward(x)), 0.0f);
  fs::remove(path);
}

TEST(ArtifactTest, AtLeast4xSmallerThanFloatSnapshot) {
  auto model = make_mixed_model();
  const std::string snapshot = temp_path("ccq_serve_size.snap");
  const std::string artifact = temp_path("ccq_serve_size.ccqa");
  core::save_snapshot(model, snapshot);
  export_artifact(model, artifact);
  const auto snapshot_bytes = fs::file_size(snapshot);
  const auto artifact_bytes = fs::file_size(artifact);
  EXPECT_GE(static_cast<double>(snapshot_bytes) /
                static_cast<double>(artifact_bytes),
            4.0)
      << "snapshot " << snapshot_bytes << " B, artifact " << artifact_bytes
      << " B";
  fs::remove(snapshot);
  fs::remove(artifact);
}

TEST(ArtifactTest, ChecksumDetectsCorruption) {
  auto model = make_mixed_model();
  const std::string path = temp_path("ccq_serve_corrupt.ccqa");
  export_artifact(model, path);

  // Flip one payload byte past the header.
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  bytes[bytes.size() / 2] ^= 0x40;
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const std::string message = error_message([&] { load_artifact(path); });
  EXPECT_NE(message.find(path), std::string::npos) << message;
  EXPECT_NE(message.find("checksum"), std::string::npos) << message;
  fs::remove(path);
}

TEST(ArtifactTest, OldVersionRejectedWithNamedDiagnostic) {
  // A v1 artifact predates the fused requantization record: silently
  // parsing it with v2 field layouts would misload, so the version gate
  // must fire first (before any payload parsing) and name both versions.
  auto model = make_mixed_model();
  const std::string path = temp_path("ccq_serve_oldversion.ccqa");
  export_artifact(model, path);

  // Rewrite the header's version field (bytes 4..7, after the magic).
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  const std::uint32_t old_version = 1;
  std::memcpy(bytes.data() + 4, &old_version, sizeof(old_version));
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const std::string message = error_message([&] { load_artifact(path); });
  EXPECT_NE(message.find(path), std::string::npos) << message;
  EXPECT_NE(message.find("unsupported version 1"), std::string::npos)
      << message;
  EXPECT_NE(message.find("version " + std::to_string(kArtifactVersion)),
            std::string::npos)
      << message;
  fs::remove(path);
}

TEST(ArtifactTest, TruncationDetected) {
  auto model = make_mixed_model();
  const std::string path = temp_path("ccq_serve_truncated.ccqa");
  export_artifact(model, path);
  fs::resize_file(path, fs::file_size(path) / 2);
  const std::string message = error_message([&] { load_artifact(path); });
  EXPECT_NE(message.find(path), std::string::npos) << message;
  EXPECT_NE(message.find("truncated"), std::string::npos) << message;
  fs::remove(path);
}

TEST(ArtifactTest, RejectsForeignFiles) {
  const std::string path = temp_path("ccq_serve_notartifact.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "definitely not a packed model artifact";
  }
  const std::string message = error_message([&] { load_artifact(path); });
  EXPECT_NE(message.find("magic"), std::string::npos) << message;
  fs::remove(path);
}

// ---- crash-safe writes -----------------------------------------------------

TEST(AtomicWriteTest, FailedWriteKeepsPreviousFile) {
  const std::string path = temp_path("ccq_serve_atomic.txt");
  atomic_write_file(path, [](std::ostream& os) { os << "generation 1"; });
  EXPECT_THROW(atomic_write_file(path,
                                 [](std::ostream& os) {
                                   os << "partial";
                                   throw Error("simulated crash mid-write");
                                 }),
               Error);
  std::ifstream is(path);
  std::string content;
  std::getline(is, content);
  EXPECT_EQ(content, "generation 1");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

TEST(AtomicWriteTest, SnapshotSaveLeavesNoTempFile) {
  auto model = make_mixed_model();
  const std::string path = temp_path("ccq_serve_snapshot.snap");
  core::save_snapshot(model, path);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_TRUE(core::load_snapshot(model, path));
  fs::remove(path);
}

// ---- snapshot load diagnostics ---------------------------------------------

TEST(SnapshotErrorTest, ShapeMismatchNamesParameterAndShapes) {
  auto narrow = make_mixed_model();
  const std::string path = temp_path("ccq_serve_mismatch.snap");
  core::save_snapshot(narrow, path);

  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.5f;  // wider: every conv shape differs
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto wide =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4, 2}));
  const std::string message =
      error_message([&] { core::load_snapshot(wide, path); });
  EXPECT_NE(message.find(path), std::string::npos) << message;
  EXPECT_NE(message.find("expects"), std::string::npos) << message;
  EXPECT_NE(message.find("found"), std::string::npos) << message;
  fs::remove(path);
}

TEST(SnapshotErrorTest, OffLadderBitsNameTheLayer) {
  auto model = make_mixed_model();  // layer 1 sits at 4 bits
  const std::string path = temp_path("ccq_serve_ladder.snap");
  core::save_snapshot(model, path);

  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto other =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 2}));
  const std::string message =
      error_message([&] { core::load_snapshot(other, path); });
  EXPECT_NE(message.find(model.registry().unit(1).name), std::string::npos)
      << message;
  EXPECT_NE(message.find("ladder"), std::string::npos) << message;
  fs::remove(path);
}

// ---- inference server ------------------------------------------------------

TEST(ServeTest, ServedOutputsBitIdenticalForAnyWorkerCount) {
  auto model = make_mixed_model();
  hw::IntegerNetwork direct = hw::IntegerNetwork::compile(model);
  const Tensor x = make_inputs(24);
  const Tensor reference = direct.forward(x);

  for (std::size_t workers : {1u, 2u, 4u}) {
    ServeConfig config;
    config.workers = workers;
    InferenceServer server(config);
    ModelConfig mc;
    mc.max_batch = 5;  // batches never align with producer strides
    mc.max_delay_us = 200;
    server.load("mixed", hw::IntegerNetwork::compile(model), mc);
    ServeHarness harness(server, "mixed");
    const HarnessReport report = harness.run(x, {.producers = 4});
    ASSERT_EQ(report.outputs.size(), x.dim(0));
    for (std::size_t i = 0; i < report.outputs.size(); ++i) {
      EXPECT_EQ(max_row_diff(report.outputs[i], reference, i), 0.0f)
          << "sample " << i << " with " << workers << " workers";
      EXPECT_EQ(report.versions[i], 1u);
    }
  }
}

TEST(ServeTest, ServedOutputsMatchThePrePackedNaiveForward) {
  // Golden check for the igemm datapath end to end: export the mixed
  // 8/4/2 SimpleCNN, reload it (the load path selects a kernel per layer
  // and re-packs the weight panels in that kernel's layout), serve it —
  // and require every served logit to be bit-identical to
  // `forward_reference`, the naive int64 triple loop that was the entire
  // serving datapath before the blocked kernels.
  auto model = make_mixed_model();
  hw::IntegerNetwork direct = hw::IntegerNetwork::compile(model);
  const Tensor x = make_inputs(24);
  const Tensor golden = direct.forward_reference(x);

  const std::string path = temp_path("ccq_serve_igemm_golden.ccqa");
  export_artifact(direct, path);
  hw::IntegerNetwork loaded = load_artifact(path);
  for (std::size_t l = 0; l < loaded.layer_count(); ++l) {
    const auto& plan = loaded.plan(l);
    if (plan.kind != hw::IntLayerPlan::Kind::kConv &&
        plan.kind != hw::IntLayerPlan::Kind::kLinear) {
      continue;
    }
    EXPECT_FALSE(plan.panel.empty())
        << "layer " << plan.name << " loaded without a packed panel";
    EXPECT_EQ(plan.panel.rows * plan.panel.depth, plan.weight_codes.size())
        << "layer " << plan.name << " panel shape mismatch";
    EXPECT_EQ(plan.panel.kernel, plan.igemm_kernel) << plan.name;
  }

  ServeConfig config;
  config.workers = 2;
  InferenceServer server(config);
  ModelConfig mc;
  mc.max_batch = 5;
  mc.max_delay_us = 200;
  server.load("golden", std::move(loaded), mc);
  ServeHarness harness(server, "golden");
  const HarnessReport report = harness.run(x, {.producers = 3});
  ASSERT_EQ(report.outputs.size(), x.dim(0));
  for (std::size_t i = 0; i < report.outputs.size(); ++i) {
    EXPECT_EQ(max_row_diff(report.outputs[i], golden, i), 0.0f)
        << "served sample " << i << " diverged from the naive reference";
  }
  fs::remove(path);
}

TEST(ServeTest, FlushesWhenBatchFills) {
  auto model = make_mixed_model();
  InferenceServer server;
  ModelConfig mc;
  mc.max_batch = 4;
  mc.max_delay_us = 5'000'000;  // only a full batch can flush this fast
  const ModelHandle handle =
      server.load("fill", hw::IntegerNetwork::compile(model), mc);

  const Tensor x = make_inputs(4);
  std::vector<Tensor> inputs(4), outputs(4);
  std::vector<std::future<void>> replies;
  const Shape chw{x.dim(1), x.dim(2), x.dim(3)};
  for (std::size_t i = 0; i < 4; ++i) {
    inputs[i] = Tensor(chw);
    const auto src = x.data().subspan(i * shape_numel(chw), shape_numel(chw));
    std::copy(src.begin(), src.end(), inputs[i].data().begin());
    replies.push_back(server.submit(handle, inputs[i], outputs[i]));
  }
  // The 4th submit fills the batch; replies must arrive long before the
  // 5-second delay deadline.
  for (auto& reply : replies) {
    ASSERT_EQ(reply.wait_for(std::chrono::seconds(2)),
              std::future_status::ready);
  }
}

TEST(ServeTest, FlushesOnDelayDeadline) {
  auto model = make_mixed_model();
  InferenceServer server;
  ModelConfig mc;
  mc.max_batch = 64;  // never fills: only the deadline can flush
  mc.max_delay_us = 20'000;
  server.load("deadline", hw::IntegerNetwork::compile(model), mc);

  Tensor input = make_inputs(1);
  Tensor sample({input.dim(1), input.dim(2), input.dim(3)});
  std::copy(input.data().begin(), input.data().end(), sample.data().begin());
  Tensor out;
  // Submit through the name-resolving convenience overload.
  auto reply = server.submit("deadline", sample, out);
  ASSERT_EQ(reply.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  reply.get();
  EXPECT_EQ(out.rank(), 1u);
}

TEST(ServeTest, RejectsWhenQueueIsFullNamingTheModel) {
  auto model = make_mixed_model();
  InferenceServer server;
  ModelConfig mc;
  mc.max_batch = 16;          // larger than capacity …
  mc.queue_capacity = 4;      // … so the queue fills while the worker
  mc.max_delay_us = 100'000;  // waits out the batch-fill deadline
  const ModelHandle handle =
      server.load("bounded", hw::IntegerNetwork::compile(model), mc);

  const Shape chw{3, 8, 8};
  std::vector<Tensor> inputs, outputs;
  for (std::size_t i = 0; i < 5; ++i) {
    inputs.push_back(make_inputs(1).reshaped(chw));
    outputs.emplace_back();
  }
  std::vector<std::future<void>> replies;
  for (std::size_t i = 0; i < 4; ++i) {
    replies.push_back(server.submit(handle, inputs[i], outputs[i]));
  }
  EXPECT_EQ(server.queue_depth("bounded"), 4u);
  const std::string message =
      error_message([&] { server.submit(handle, inputs[4], outputs[4]); });
  EXPECT_NE(message.find("bounded"), std::string::npos) << message;
  EXPECT_NE(message.find("capacity 4"), std::string::npos) << message;
  server.shutdown();  // flushes the queued four immediately
  for (auto& reply : replies) reply.get();
}

TEST(ServeTest, DrainWaitsForAllReplies) {
  auto model = make_mixed_model();
  ServeConfig config;
  config.workers = 2;
  InferenceServer server(config);
  ModelConfig mc;
  mc.max_batch = 3;
  mc.max_delay_us = 500;
  server.load("drain", hw::IntegerNetwork::compile(model), mc);
  ServeHarness harness(server, "drain");
  // run() already joins all futures; drain() afterwards must return
  // immediately with nothing queued or in flight.
  harness.run(make_inputs(12), {.producers = 3});
  server.drain();
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(ServeTest, ShutdownServesQueuedRequestsThenRejects) {
  auto model = make_mixed_model();
  InferenceServer server;
  ModelConfig mc;
  mc.max_batch = 16;
  mc.max_delay_us = 60'000'000;  // effectively never flushes on its own
  const ModelHandle handle =
      server.load("slow", hw::IntegerNetwork::compile(model), mc);

  // Build every input/output up front: the server keeps pointers into
  // these vectors, so they must not reallocate after the first submit.
  const Shape chw{3, 8, 8};
  std::vector<Tensor> inputs, outputs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    inputs.push_back(make_inputs(1).reshaped(chw));
  }
  std::vector<std::future<void>> replies;
  for (std::size_t i = 0; i < 3; ++i) {
    replies.push_back(server.submit(handle, inputs[i], outputs[i]));
  }
  server.shutdown();  // graceful: queued work is served before exit
  for (auto& reply : replies) reply.get();
  for (const Tensor& out : outputs) EXPECT_EQ(out.rank(), 1u);

  Tensor late_in = make_inputs(1).reshaped(chw);
  Tensor late_out;
  EXPECT_THROW(server.submit(handle, late_in, late_out), ServerStoppedError);
}

TEST(ServeTest, RejectsMismatchedSampleShapes) {
  auto model = make_mixed_model();
  InferenceServer server;
  const ModelHandle handle =
      server.load("shapes", hw::IntegerNetwork::compile(model));
  Tensor batch_in = make_inputs(1);
  Tensor out;
  EXPECT_THROW(server.submit(handle, batch_in, out), Error);  // rank 4

  Tensor first = make_inputs(1).reshaped({3, 8, 8});
  auto reply = server.submit(handle, first, out);
  Tensor odd({3, 4, 4});
  Tensor odd_out;
  EXPECT_THROW(server.submit(handle, odd, odd_out), Error);
  reply.get();
}

TEST(ServeTest, WrongGeometryFirstRequestRejectedWithoutPoisoningPin) {
  auto model = make_mixed_model();
  InferenceServer server;
  const ModelHandle handle =
      server.load("geometry", hw::IntegerNetwork::compile(model));
  // A wrong-geometry *first* request must be rejected at admission (the
  // network expects 3 input channels), not pin its shape — over the TCP
  // front end it is untrusted, and an unchecked pin would both size the
  // conv loops from its dims and reject every later well-formed submit.
  Tensor bogus({7, 8, 8});
  Tensor bogus_out;
  const std::string message =
      error_message([&] { server.submit(handle, bogus, bogus_out); });
  EXPECT_NE(message.find("channels"), std::string::npos) << message;

  Tensor good = make_inputs(1).reshaped({3, 8, 8});
  Tensor out;
  server.submit(handle, good, out).get();  // pin is clean: this serves
  EXPECT_EQ(out.rank(), 1u);
  EXPECT_EQ(out.dim(0), 5u);
}

TEST(ServeTest, ZeroDimSampleRejectedAtAdmission) {
  auto model = make_mixed_model();
  InferenceServer server;
  const ModelHandle handle =
      server.load("zerodim", hw::IntegerNetwork::compile(model));
  Tensor zero({3, 0, 8});
  Tensor out;
  const std::string message =
      error_message([&] { server.submit(handle, zero, out); });
  EXPECT_NE(message.find("zero dimension"), std::string::npos) << message;
}

TEST(ServeTest, SubmitToUnknownNameThrowsModelNotFound) {
  InferenceServer server;
  Tensor sample({3, 8, 8});
  Tensor out;
  const std::string message =
      error_message([&] { server.submit("absent", sample, out); });
  EXPECT_NE(message.find("absent"), std::string::npos) << message;
  EXPECT_THROW(server.resolve("absent"), ModelNotFoundError);
}

TEST(ServeTest, HarnessRetriesRejectionsToCompletion) {
  auto model = make_mixed_model();
  InferenceServer server;
  ModelConfig mc;
  mc.max_batch = 2;
  mc.max_delay_us = 100;
  mc.queue_capacity = 2;  // tiny: 4 producers must hit rejections
  server.load("tiny", hw::IntegerNetwork::compile(model), mc);
  ServeHarness harness(server, "tiny");
  const Tensor x = make_inputs(32);
  const HarnessReport report = harness.run(x, {.producers = 4});
  EXPECT_EQ(report.requests, 32u);
  ASSERT_EQ(report.outputs.size(), 32u);
  for (const Tensor& out : report.outputs) EXPECT_EQ(out.rank(), 1u);
}

TEST(ServeTest, TwoModelsServeConcurrentlyOnOnePool) {
  // Two distinct artifacts behind one shared worker pool: interleaved
  // traffic to both names must stay bit-identical to each model's own
  // direct forward (requests are never cross-batched between models).
  auto mixed = make_mixed_model();
  hw::IntegerNetwork mixed_net = hw::IntegerNetwork::compile(mixed);

  models::ModelConfig mc8;
  mc8.num_classes = 5;
  mc8.image_size = 8;
  mc8.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto uniform =
      models::make_simple_cnn(mc8, factory, quant::BitLadder({8, 4, 2}));
  {
    quant::LayerRegistry& registry = uniform.registry();
    for (std::size_t i = 0; i < registry.size(); ++i) {
      registry.set_ladder_pos(i, 0);  // uniform 8-bit: differs from mixed
    }
    Workspace ws;
    uniform.set_training(true);
    uniform.forward(make_inputs(16), ws);
    uniform.set_training(false);
  }
  hw::IntegerNetwork uniform_net = hw::IntegerNetwork::compile(uniform);

  const Tensor x = make_inputs(16);
  const Tensor ref_mixed = mixed_net.forward(x);
  const Tensor ref_uniform = uniform_net.forward(x);
  ASSERT_NE(max_abs_diff(ref_mixed, ref_uniform), 0.0f)
      << "models must be distinguishable for this test to mean anything";

  ServeConfig config;
  config.workers = 2;
  InferenceServer server(config);
  ModelConfig serve_mc;
  serve_mc.max_batch = 3;
  serve_mc.max_delay_us = 200;
  server.load("mixed", std::move(mixed_net), serve_mc);
  server.load("uniform", std::move(uniform_net), serve_mc);
  EXPECT_EQ(server.registry().names().size(), 2u);

  ServeHarness drive_mixed(server, "mixed");
  ServeHarness drive_uniform(server, "uniform");
  HarnessReport report_mixed, report_uniform;
  std::thread t([&] { report_mixed = drive_mixed.run(x, {.producers = 2}); });
  report_uniform = drive_uniform.run(x, {.producers = 2});
  t.join();

  ASSERT_EQ(report_mixed.outputs.size(), x.dim(0));
  ASSERT_EQ(report_uniform.outputs.size(), x.dim(0));
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    EXPECT_EQ(max_row_diff(report_mixed.outputs[i], ref_mixed, i), 0.0f)
        << "mixed sample " << i;
    EXPECT_EQ(max_row_diff(report_uniform.outputs[i], ref_uniform, i), 0.0f)
        << "uniform sample " << i;
  }
}

}  // namespace
}  // namespace ccq::serve
