// Telemetry subsystem + step-wise controller tests: metric registry
// semantics, JSONL trace schema, observer delivery, and mid-run
// stop/resume bit-identity (snapshot + controller state).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ccq/common/telemetry.hpp"
#include "ccq/core/controller.hpp"
#include "ccq/core/observers.hpp"
#include "ccq/core/snapshot.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/simple.hpp"

namespace ccq::core {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  data::Dataset train_set;
  data::Dataset val_set;
  models::QuantModel model;
};

// Identical construction order to the pretrained variant, so two calls
// with the same arguments produce bit-identical fixtures.
Fixture make_fixture(bool pretrain = true) {
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.samples_per_class = 30;
  dc.height = dc.width = 8;
  dc.seed = 5;
  data::Dataset train_set = data::make_synthetic_vision(dc);
  data::Dataset val_set = train_set.take_tail(32);

  models::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4}));

  if (pretrain) {
    TrainConfig pre;
    pre.epochs = 2;
    pre.batch_size = 16;
    pre.sgd = {.lr = 0.05, .momentum = 0.9, .weight_decay = 1e-4};
    train(model, train_set, val_set, pre);
  }
  return Fixture{std::move(train_set), std::move(val_set), std::move(model)};
}

CcqConfig fast_config() {
  CcqConfig config;
  config.probes_per_step = 2;
  config.probe_samples = 32;
  config.max_recovery_epochs = 2;
  config.initial_recovery_epochs = 1;
  config.finetune.batch_size = 16;
  config.finetune.sgd = {.lr = 0.02, .momentum = 0.9, .weight_decay = 1e-4};
  config.hybrid_lr.base_lr = 0.02;
  return config;
}

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

void expect_step_records_equal(const StepRecord& a, const StepRecord& b) {
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.layer, b.layer);
  EXPECT_EQ(a.layer_name, b.layer_name);
  EXPECT_EQ(a.new_bits, b.new_bits);
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.val_acc_before_recovery, b.val_acc_before_recovery);
  EXPECT_EQ(a.val_acc_after_recovery, b.val_acc_after_recovery);
  EXPECT_EQ(a.recovery_epochs, b.recovery_epochs);
  EXPECT_EQ(a.compression, b.compression);
  ASSERT_EQ(a.pick_probabilities.size(), b.pick_probabilities.size());
  for (std::size_t i = 0; i < a.pick_probabilities.size(); ++i) {
    EXPECT_EQ(a.pick_probabilities[i], b.pick_probabilities[i]);
  }
}

// ---- metric registry -------------------------------------------------------

TEST(TelemetryTest, DisabledCountersAreNoOps) {
  telemetry::set_metrics_enabled(false);
  telemetry::reset_metrics();
  telemetry::add(telemetry::Counter::kProbes, 5);
  telemetry::set_gauge(telemetry::Gauge::kLambda, 0.5);
  { telemetry::ScopedTimer t(telemetry::Timer::kGemm); }
  EXPECT_EQ(telemetry::counter_value(telemetry::Counter::kProbes), 0u);
  EXPECT_EQ(telemetry::gauge_value(telemetry::Gauge::kLambda), 0.0);
  EXPECT_EQ(telemetry::timer_stats(telemetry::Timer::kGemm).count, 0u);
}

TEST(TelemetryTest, EnabledRegistryRecordsAndResets) {
  telemetry::set_metrics_enabled(true);
  telemetry::reset_metrics();
  telemetry::add(telemetry::Counter::kPicks);
  telemetry::add(telemetry::Counter::kPicks, 2);
  telemetry::set_gauge(telemetry::Gauge::kCompression, 3.5);
  { telemetry::ScopedTimer t(telemetry::Timer::kProbeEval); }
  EXPECT_EQ(telemetry::counter_value(telemetry::Counter::kPicks), 3u);
  EXPECT_EQ(telemetry::gauge_value(telemetry::Gauge::kCompression), 3.5);
  const auto stats = telemetry::timer_stats(telemetry::Timer::kProbeEval);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_LE(stats.min_ns, stats.max_ns);
  telemetry::reset_metrics();
  EXPECT_EQ(telemetry::counter_value(telemetry::Counter::kPicks), 0u);
  EXPECT_EQ(telemetry::timer_stats(telemetry::Timer::kProbeEval).count, 0u);
  telemetry::set_metrics_enabled(false);
}

TEST(TelemetryTest, MetricsReportIsValidJson) {
  telemetry::set_metrics_enabled(true);
  telemetry::reset_metrics();
  telemetry::add(telemetry::Counter::kProbes, 7);
  telemetry::set_gauge(telemetry::Gauge::kLambda, 0.25);
  { telemetry::ScopedTimer t(telemetry::Timer::kGemm); }
  const Json report = Json::parse(telemetry::metrics_to_json().dump());
  EXPECT_EQ(report.at("counters").at("ccq.probes").as_double(), 7.0);
  EXPECT_EQ(report.at("gauges").at("ccq.lambda").as_double(), 0.25);
  EXPECT_EQ(report.at("timers").at("gemm").at("count").as_double(), 1.0);
  EXPECT_TRUE(report.at("timers").at("gemm").contains("histogram_ns"));
  telemetry::reset_metrics();
  telemetry::set_metrics_enabled(false);
}

// ---- observers -------------------------------------------------------------

struct CountingObserver : CcqObserver {
  int probes = 0;
  int picks = 0;
  int recovery_epochs = 0;
  std::vector<std::size_t> picked_layers;

  void on_probe(const ProbeEvent& event) override {
    ++probes;
    EXPECT_EQ(event.probabilities.size(), event.pi.size());
    EXPECT_GE(event.loss, 0.0f);
  }
  void on_pick(const PickEvent& event) override {
    ++picks;
    picked_layers.push_back(event.layer);
    EXPECT_GT(event.new_bits, 0);
  }
  void on_recovery_epoch(const RecoveryEpochEvent& event) override {
    ++recovery_epochs;
    EXPECT_GE(event.global_epoch, 0);
  }
};

TEST(CcqControllerTest, ObserverSeesEveryEvent) {
  Fixture f = make_fixture();
  CcqController controller(f.model, f.train_set, f.val_set, fast_config());
  CountingObserver counter;
  controller.add_observer(&counter);
  controller.init();
  std::vector<StepRecord> records;
  while (!controller.done()) records.push_back(controller.step());
  const CcqResult result = controller.result();

  EXPECT_EQ(counter.picks, static_cast<int>(result.steps.size()));
  EXPECT_EQ(counter.probes,
            static_cast<int>(result.steps.size()) *
                fast_config().probes_per_step);
  // Every epoch on the curve is a recovery epoch (initial ones included).
  EXPECT_EQ(counter.recovery_epochs, static_cast<int>(result.curve.size()));
  ASSERT_EQ(counter.picked_layers.size(), result.steps.size());
  for (std::size_t i = 0; i < result.steps.size(); ++i) {
    EXPECT_EQ(counter.picked_layers[i], result.steps[i].layer);
    expect_step_records_equal(records[i], result.steps[i]);
  }
}

TEST(CcqControllerTest, ShimMatchesControllerLoop) {
  Fixture a = make_fixture();
  Fixture b = make_fixture();
  const CcqResult via_shim =
      run_ccq(a.model, a.train_set, a.val_set, fast_config());
  CcqController controller(b.model, b.train_set, b.val_set, fast_config());
  controller.init();
  while (!controller.done()) controller.step();
  const CcqResult via_controller = controller.result();

  ASSERT_EQ(via_shim.steps.size(), via_controller.steps.size());
  for (std::size_t i = 0; i < via_shim.steps.size(); ++i) {
    expect_step_records_equal(via_shim.steps[i], via_controller.steps[i]);
  }
  EXPECT_EQ(via_shim.final_accuracy, via_controller.final_accuracy);
  EXPECT_EQ(via_shim.final_bits, via_controller.final_bits);
}

// ---- trace sink ------------------------------------------------------------

TEST(CcqControllerTest, TraceSchemaCoversEveryEvent) {
  const std::string path = temp_path("ccq_trace_test.jsonl");
  telemetry::set_trace_path(path);
  Fixture f = make_fixture();
  CcqConfig config = fast_config();
  config.max_steps = 2;
  CcqController controller(f.model, f.train_set, f.val_set, config);
  controller.init();
  while (!controller.done()) controller.step();
  const CcqResult result = controller.result();
  telemetry::set_trace_path("");  // disable + close before reading

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  int probes = 0, picks = 0, recovery = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const Json record = Json::parse(line);
    const std::string event = record.at("event").as_string();
    EXPECT_TRUE(record.contains("step"));
    if (event == "probe") {
      ++probes;
      EXPECT_TRUE(record.contains("layer_name"));
      EXPECT_TRUE(record.contains("loss"));
      EXPECT_TRUE(record.contains("lambda"));
      EXPECT_EQ(record.at("probs").size(), f.model.registry().size());
      EXPECT_EQ(record.at("pi").size(), f.model.registry().size());
    } else if (event == "pick") {
      ++picks;
      EXPECT_TRUE(record.contains("new_bits"));
      EXPECT_TRUE(record.contains("compression"));
      EXPECT_EQ(record.at("probs").size(), f.model.registry().size());
    } else if (event == "recovery_epoch") {
      ++recovery;
      EXPECT_TRUE(record.contains("train_loss"));
      EXPECT_TRUE(record.contains("val_acc"));
      EXPECT_TRUE(record.contains("lr"));
    } else {
      ADD_FAILURE() << "unknown trace event: " << event;
    }
  }
  EXPECT_EQ(picks, static_cast<int>(result.steps.size()));
  EXPECT_EQ(probes,
            static_cast<int>(result.steps.size()) * config.probes_per_step);
  EXPECT_EQ(recovery, static_cast<int>(result.curve.size()));
  std::remove(path.c_str());
}

// ---- stop/resume -----------------------------------------------------------

TEST(CcqControllerTest, StopResumeIsBitIdentical) {
  const std::string snapshot = temp_path("ccq_resume_test.snap");
  const std::string state = temp_path("ccq_resume_test.state");

  // Reference: one uninterrupted run.
  Fixture full = make_fixture();
  CcqController full_controller(full.model, full.train_set, full.val_set,
                                fast_config());
  full_controller.init();
  std::vector<StepRecord> full_records;
  while (!full_controller.done()) {
    full_records.push_back(full_controller.step());
  }
  const CcqResult full_result = full_controller.result();
  ASSERT_GE(full_records.size(), 4u);

  // Interrupted run: stop mid-run at a step boundary, persist both
  // halves of the state (model snapshot + controller loop state).
  const std::size_t stop_after = 2;
  Fixture first = make_fixture();
  std::vector<StepRecord> records;
  {
    CcqController controller(first.model, first.train_set, first.val_set,
                             fast_config());
    controller.init();
    for (std::size_t i = 0; i < stop_after; ++i) {
      records.push_back(controller.step());
    }
    save_snapshot(first.model, snapshot);
    controller.save_state(state);
  }  // controller (and its workspace) destroyed: a genuine cold resume

  // Resume into a fresh, never-pretrained model of the same structure.
  Fixture resumed = make_fixture(/*pretrain=*/false);
  ASSERT_TRUE(load_snapshot(resumed.model, snapshot));
  CcqController controller(resumed.model, resumed.train_set, resumed.val_set,
                           fast_config());
  ASSERT_TRUE(controller.load_state(state));
  EXPECT_EQ(controller.steps_completed(), static_cast<int>(stop_after));
  EXPECT_EQ(controller.baseline_accuracy(), full_result.baseline_accuracy);
  while (!controller.done()) records.push_back(controller.step());
  const CcqResult resumed_result = controller.result();

  // The concatenated step sequence must match the uninterrupted run
  // field for field — same layers, same probabilities, same accuracies.
  ASSERT_EQ(records.size(), full_records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    expect_step_records_equal(records[i], full_records[i]);
  }
  EXPECT_EQ(resumed_result.final_accuracy, full_result.final_accuracy);
  EXPECT_EQ(resumed_result.final_compression, full_result.final_compression);
  EXPECT_EQ(resumed_result.final_bits, full_result.final_bits);

  std::remove(snapshot.c_str());
  std::remove(state.c_str());
}

TEST(CcqControllerTest, LoadStateMissingFileReturnsFalse) {
  Fixture f = make_fixture(/*pretrain=*/false);
  CcqController controller(f.model, f.train_set, f.val_set, fast_config());
  EXPECT_FALSE(controller.load_state(temp_path("ccq_no_such_state.bin")));
  EXPECT_FALSE(controller.initialized());
}

TEST(CcqControllerTest, StepBeforeInitThrows) {
  Fixture f = make_fixture(/*pretrain=*/false);
  CcqController controller(f.model, f.train_set, f.val_set, fast_config());
  EXPECT_THROW(controller.step(), Error);
  EXPECT_THROW(controller.save_state(temp_path("ccq_uninit.state")), Error);
}

TEST(NamedMetricsTest, CapacityExhaustionDisablesInsteadOfThrowing) {
  // The serving stack registers per-model series at model-load time; a
  // telemetry capacity limit must degrade that model's metrics to
  // no-ops, never fail the load.  Fill the counter table …
  using telemetry::NamedKind;
  int last = -1;
  for (std::size_t i = 0; i < telemetry::kMaxNamedMetrics; ++i) {
    last = telemetry::named_metric(NamedKind::kCounter,
                                   "test.cap." + std::to_string(i));
    if (last < 0) break;  // table partially used by earlier registrants
  }
  // … then one past capacity returns -1 rather than throwing, recording
  // through -1 no-ops, and existing names still resolve to their slots.
  const int overflow =
      telemetry::named_metric(NamedKind::kCounter, "test.cap.overflow");
  EXPECT_EQ(overflow, -1);
  EXPECT_NO_THROW(telemetry::add_named(overflow));
  EXPECT_EQ(telemetry::named_counter_value(overflow), 0u);
  EXPECT_EQ(telemetry::named_metric(NamedKind::kCounter, "test.cap.0"),
            telemetry::find_named_metric(NamedKind::kCounter, "test.cap.0"));
  EXPECT_EQ(telemetry::find_named_metric(NamedKind::kCounter,
                                         "test.cap.overflow"),
            -1);
}

}  // namespace
}  // namespace ccq::core
