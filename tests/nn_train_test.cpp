// Tests for loss, optimizer and learning-rate schedules.
#include <gtest/gtest.h>

#include <cmath>

#include "ccq/nn/gradcheck.hpp"
#include "ccq/nn/linear.hpp"
#include "ccq/nn/loss.hpp"
#include "ccq/nn/optim.hpp"
#include "ccq/nn/schedule.hpp"

namespace ccq::nn {
namespace {

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 4});  // all zeros → uniform softmax
  const float l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectPredictionHasLowLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3}, std::vector<float>{10, 0, 0});
  EXPECT_LT(loss.forward(logits, {0}), 1e-3f);
  EXPECT_GT(loss.forward(logits, {1}), 5.0f);
}

TEST(SoftmaxCrossEntropyTest, InvariantToLogitShift) {
  SoftmaxCrossEntropy loss;
  Tensor a({1, 3}, std::vector<float>{1, 2, 3});
  Tensor b({1, 3}, std::vector<float>{101, 102, 103});
  EXPECT_NEAR(loss.forward(a, {2}), loss.forward(b, {2}), 1e-4f);
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesNumeric) {
  SoftmaxCrossEntropy loss;
  Rng rng(1);
  Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<int> labels{0, 2, 4};
  loss.forward(logits, labels);
  const Tensor grad = loss.backward();
  auto loss_fn = [&]() {
    SoftmaxCrossEntropy l2;
    return static_cast<double>(l2.forward(logits, labels));
  };
  const auto r = check_input_grad(logits, grad, loss_fn, 1e-3, 15);
  EXPECT_LT(r.max_rel_err, 1e-2f);
}

TEST(SoftmaxCrossEntropyTest, GradientRowsSumToZero) {
  SoftmaxCrossEntropy loss;
  Rng rng(2);
  Tensor logits = Tensor::randn({4, 6}, rng);
  loss.forward(logits, {1, 2, 3, 4});
  const Tensor grad = loss.backward();
  for (std::size_t i = 0; i < 4; ++i) {
    float row = 0.0f;
    for (std::size_t j = 0; j < 6; ++j) row += grad(i, j);
    EXPECT_NEAR(row, 0.0f, 1e-6f);
  }
}

TEST(SoftmaxCrossEntropyTest, LabelValidation) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  EXPECT_THROW(loss.forward(logits, {3}), Error);
  EXPECT_THROW(loss.forward(logits, {-1}), Error);
  EXPECT_THROW(loss.forward(logits, {0, 1}), Error);
}

TEST(SoftmaxCrossEntropyTest, AccuracyCountsArgmaxHits) {
  Tensor logits({3, 2}, std::vector<float>{2, 1, 0, 5, 1, 0});
  EXPECT_FLOAT_EQ(SoftmaxCrossEntropy::accuracy(logits, {0, 1, 0}), 1.0f);
  EXPECT_NEAR(SoftmaxCrossEntropy::accuracy(logits, {1, 1, 0}), 2.0f / 3, 1e-6f);
}

// ---- SGD -------------------------------------------------------------------

TEST(SgdTest, PlainStepMovesAgainstGradient) {
  Parameter p("w", Tensor::from({1.0f}));
  p.grad.at(0) = 2.0f;
  Sgd opt({&p}, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  opt.step();
  EXPECT_NEAR(p.value.at(0), 0.8f, 1e-6f);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Parameter p("w", Tensor::from({1.0f}));
  Sgd opt({&p}, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.5});
  opt.step();  // grad = 0 + wd·w = 0.5
  EXPECT_NEAR(p.value.at(0), 0.95f, 1e-6f);
}

TEST(SgdTest, WeightDecayScaleExempts) {
  Parameter p("gamma", Tensor::from({1.0f}));
  p.weight_decay_scale = 0.0f;
  Sgd opt({&p}, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.5});
  opt.step();
  EXPECT_FLOAT_EQ(p.value.at(0), 1.0f);
}

TEST(SgdTest, MomentumAccumulates) {
  Parameter p("w", Tensor::from({0.0f}));
  Sgd opt({&p}, {.lr = 1.0, .momentum = 0.5, .weight_decay = 0.0});
  p.grad.at(0) = 1.0f;
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(p.value.at(0), -1.0f, 1e-6f);
  p.grad.at(0) = 1.0f;
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(p.value.at(0), -2.5f, 1e-6f);
}

TEST(SgdTest, LrScaleAppliesPerParameter) {
  Parameter p("alpha", Tensor::from({1.0f}));
  p.lr_scale = 0.1f;
  p.grad.at(0) = 1.0f;
  Sgd opt({&p}, {.lr = 1.0, .momentum = 0.0, .weight_decay = 0.0});
  opt.step();
  EXPECT_NEAR(p.value.at(0), 0.9f, 1e-6f);
}

TEST(SgdTest, ZeroGradClears) {
  Parameter p("w", Tensor::from({1.0f}));
  p.grad.at(0) = 3.0f;
  Sgd opt({&p}, {});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.at(0), 0.0f);
}

TEST(SgdTest, ConvergesOnLeastSquares) {
  Workspace ws;
  // Fit y = 2x − 1 with a single Linear layer.
  Rng rng(3);
  Linear fc(1, 1, true, rng);
  Sgd opt(fc.parameters(), {.lr = 0.1, .momentum = 0.9, .weight_decay = 0.0});
  for (int it = 0; it < 300; ++it) {
    Tensor x = Tensor::rand_uniform({8, 1}, rng, -1.0f, 1.0f);
    Tensor y = fc.forward(x, ws);
    Tensor grad(y.shape());
    for (std::size_t i = 0; i < 8; ++i) {
      const float target = 2.0f * x(i, 0) - 1.0f;
      grad(i, 0) = (y(i, 0) - target) / 8.0f;
    }
    opt.zero_grad();
    fc.backward(grad, ws);
    opt.step();
  }
  EXPECT_NEAR(fc.weight().value(0, 0), 2.0f, 0.05f);
  EXPECT_NEAR(fc.bias().value.at(0), -1.0f, 0.05f);
}

// ---- Schedules -------------------------------------------------------------

TEST(ScheduleTest, ConstantHoldsRate) {
  ConstantLr s(0.5);
  EXPECT_EQ(s.next(0.1), 0.5);
  EXPECT_EQ(s.next(0.9), 0.5);
}

TEST(ScheduleTest, StepDecayHalvesOnSchedule) {
  StepDecayLr s(1.0, 2, 0.5);
  EXPECT_DOUBLE_EQ(s.next(0), 1.0);   // epoch 0
  EXPECT_DOUBLE_EQ(s.next(0), 1.0);   // epoch 1
  EXPECT_DOUBLE_EQ(s.next(0), 0.5);   // epoch 2
  EXPECT_DOUBLE_EQ(s.next(0), 0.5);   // epoch 3
  EXPECT_DOUBLE_EQ(s.next(0), 0.25);  // epoch 4
}

TEST(ScheduleTest, CosineRestartsAtPeriod) {
  CosineRestartLr s(1.0, 0.0, 4);
  const double e0 = s.next(0);
  const double e1 = s.next(0);
  const double e2 = s.next(0);
  s.next(0);
  const double e4 = s.next(0);  // restart
  EXPECT_DOUBLE_EQ(e0, 1.0);
  EXPECT_GT(e1, e2);
  EXPECT_DOUBLE_EQ(e4, 1.0);
}

TEST(HybridLrTest, HoldsBaseWhileImproving) {
  HybridPlateauCosineLr s({.base_lr = 0.1,
                           .bump_factor = 10.0,
                           .patience = 2,
                           .min_delta = 1e-4,
                           .cosine_period = 3});
  EXPECT_DOUBLE_EQ(s.next(0.5), 0.1);
  EXPECT_DOUBLE_EQ(s.next(0.6), 0.1);
  EXPECT_DOUBLE_EQ(s.next(0.7), 0.1);
  EXPECT_FALSE(s.in_cosine_phase());
}

TEST(HybridLrTest, BumpsOnPlateauThenDecaysBack) {
  HybridPlateauCosineLr s({.base_lr = 0.1,
                           .bump_factor = 10.0,
                           .patience = 2,
                           .min_delta = 1e-4,
                           .cosine_period = 4});
  s.next(0.5);
  s.next(0.5);                         // stall 1
  const double peak = s.next(0.5);     // stall 2 → bump
  EXPECT_DOUBLE_EQ(peak, 1.0);
  EXPECT_TRUE(s.in_cosine_phase());
  const double d1 = s.next(0.5);
  const double d2 = s.next(0.5);
  const double d3 = s.next(0.5);
  EXPECT_GT(peak, d1);
  EXPECT_GT(d1, d2);
  EXPECT_GT(d2, d3);
  EXPECT_GE(d3, 0.1);                  // never below base
  EXPECT_FALSE(s.in_cosine_phase());
  // Back to plateau watching at base rate.
  EXPECT_DOUBLE_EQ(s.next(0.9), 0.1);
}

TEST(HybridLrTest, ImprovementDuringCosineResetsPlateau) {
  HybridPlateauCosineLr s({.base_lr = 0.1,
                           .bump_factor = 5.0,
                           .patience = 1,
                           .min_delta = 1e-4,
                           .cosine_period = 2});
  s.next(0.5);
  s.next(0.5);  // bump (patience 1)
  s.next(0.9);  // cosine phase, improvement recorded
  // After the excursion a fresh plateau relative to 0.9 is required.
  EXPECT_DOUBLE_EQ(s.next(0.95), 0.1);
}

TEST(HybridLrTest, ResetClearsState) {
  HybridPlateauCosineLr s({.base_lr = 0.1,
                           .bump_factor = 10.0,
                           .patience = 1,
                           .min_delta = 1e-4,
                           .cosine_period = 3});
  s.next(0.5);
  s.next(0.5);  // bump
  EXPECT_TRUE(s.in_cosine_phase());
  s.reset();
  EXPECT_FALSE(s.in_cosine_phase());
  EXPECT_DOUBLE_EQ(s.next(0.1), 0.1);
}

TEST(HybridLrTest, ConfigValidation) {
  EXPECT_THROW(HybridPlateauCosineLr({.patience = 0}), Error);
  EXPECT_THROW(HybridPlateauCosineLr({.bump_factor = 0.5}), Error);
  EXPECT_THROW(HybridPlateauCosineLr({.cosine_period = 0}), Error);
}

}  // namespace
}  // namespace ccq::nn
