// Tests for the integer inference engine: BN folding, code extraction,
// and — the headline property — parity with the float-simulated
// quantized forward pass.
#include <gtest/gtest.h>

#include <cmath>

#include "ccq/core/trainer.hpp"
#include "ccq/nn/loss.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/hw/integer_engine.hpp"
#include "ccq/models/resnet.hpp"
#include "ccq/models/simple.hpp"

namespace ccq::hw {
namespace {

/// Snap a batch of images to the engine's 8-bit input grid so the float
/// reference sees exactly the same inputs.
Tensor snap_input(Tensor x) {
  x.apply([](float v) {
    return std::clamp(std::round(v * 255.0f), 0.0f, 255.0f) / 255.0f;
  });
  return x;
}

struct EngineSetup {
  data::Dataset train;
  data::Dataset val;
  models::QuantModel model;
};

EngineSetup make_setup(quant::Policy policy, std::size_t ladder_floor_pos,
                 bool use_cnn = true) {
  data::SyntheticConfig dc;
  dc.num_classes = 5;
  dc.samples_per_class = 30;
  dc.height = dc.width = 8;
  dc.seed = 77;
  data::Dataset train = data::make_synthetic_vision(dc);
  data::Dataset val = train.take_tail(30);

  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = policy};
  quant::BitLadder ladder({8, 4, 2});
  auto model = use_cnn ? models::make_simple_cnn(mc, factory, ladder)
                       : models::make_mlp(mc, factory, ladder, 16);

  core::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 16;
  cfg.sgd = {.lr = 0.05, .momentum = 0.9, .weight_decay = 1e-4};
  core::train(model, train, val, cfg);
  model.registry().set_all(ladder_floor_pos);
  // A couple of quantization-aware epochs so BN stats and PACT clips
  // settle on the quantized network.
  core::TrainConfig ft;
  ft.epochs = 2;
  ft.batch_size = 16;
  ft.sgd = {.lr = 0.01, .momentum = 0.9, .weight_decay = 1e-4};
  core::train(model, train, val, ft);
  return EngineSetup{std::move(train), std::move(val), std::move(model)};
}

void expect_parity(EngineSetup& s, float logit_tol, float min_label_agreement) {
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  const data::Batch batch = s.val.all();
  const Tensor x = snap_input(batch.images);

  s.model.set_training(false);
  const Tensor ref = s.model.forward(x);
  const Tensor out = net.forward(x);
  ASSERT_EQ(out.shape(), ref.shape());

  // Logit-level closeness.
  float max_err = 0.0f;
  std::size_t agree = 0;
  const std::size_t n = out.dim(0), c = out.dim(1);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best_ref = 0, best_out = 0;
    for (std::size_t j = 0; j < c; ++j) {
      max_err = std::max(max_err, std::fabs(out(i, j) - ref(i, j)));
      if (ref(i, j) > ref(i, best_ref)) best_ref = j;
      if (out(i, j) > out(i, best_out)) best_out = j;
    }
    if (best_ref == best_out) ++agree;
  }
  EXPECT_LT(max_err, logit_tol);
  EXPECT_GE(static_cast<float>(agree) / static_cast<float>(n),
            min_label_agreement);
}

TEST(IntegerEngineTest, CompilesSimpleCnn) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  // 4 conv + gap + fc = 6 plans (BN/act folded into conv plans).
  EXPECT_EQ(net.layer_count(), 6u);
  EXPECT_EQ(net.plan(0).kind, IntLayerPlan::Kind::kConv);
  EXPECT_TRUE(net.plan(0).has_act);
  EXPECT_EQ(net.plan(5).kind, IntLayerPlan::Kind::kLinear);
  EXPECT_FALSE(net.plan(5).has_act);
}

TEST(IntegerEngineTest, WeightCodesFitTheBitWidth) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 2);  // 2-bit floor
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    const auto& plan = net.plan(l);
    if (plan.kind != IntLayerPlan::Kind::kConv &&
        plan.kind != IntLayerPlan::Kind::kLinear) {
      continue;
    }
    // Doubled codes of a 2-bit symmetric grid lie in {−2, 0, 2}.
    for (std::int32_t code : plan.weight_codes) {
      EXPECT_LE(std::abs(code), 2 * ((1 << (plan.weight_bits - 1)) - 1));
    }
  }
}

TEST(IntegerEngineTest, ParityMinMax4Bit) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  expect_parity(s, 0.05f, 0.95f);
}

TEST(IntegerEngineTest, ParityMinMax2Bit) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 2);
  expect_parity(s, 0.05f, 0.95f);
}

TEST(IntegerEngineTest, ParityPact4Bit) {
  // PACT uses DoReFa's half-offset weight grid — exercises code doubling.
  EngineSetup s = make_setup(quant::Policy::kPact, 1);
  expect_parity(s, 0.05f, 0.95f);
}

TEST(IntegerEngineTest, ParityWrpn8Bit) {
  EngineSetup s = make_setup(quant::Policy::kWrpn, 0);
  expect_parity(s, 0.05f, 0.95f);
}

TEST(IntegerEngineTest, ParityMlp) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1, /*use_cnn=*/false);
  expect_parity(s, 0.02f, 0.99f);
}

TEST(IntegerEngineTest, AccuracyMatchesFloatSimulation) {
  EngineSetup s = make_setup(quant::Policy::kPact, 1);
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  const data::Batch batch = s.val.all();
  const Tensor x = snap_input(batch.images);
  s.model.set_training(false);
  const Tensor ref = s.model.forward(x);
  const Tensor out = net.forward(x);
  const float ref_acc = nn::SoftmaxCrossEntropy::accuracy(ref, batch.labels);
  const float int_acc = nn::SoftmaxCrossEntropy::accuracy(out, batch.labels);
  EXPECT_NEAR(ref_acc, int_acc, 0.05f);
}

TEST(IntegerEngineTest, MacsPerSampleMatchesRegistry) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  std::size_t registry_macs = 0;
  for (std::size_t i = 0; i < s.model.registry().size(); ++i) {
    registry_macs += s.model.registry().unit(i).macs;
  }
  EXPECT_EQ(net.macs_per_sample(8, 8), registry_macs);
}

TEST(IntegerEngineTest, RejectsResidualTopologies) {
  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto resnet = models::make_resnet20(mc, factory, quant::BitLadder({8, 4, 2}));
  resnet.registry().set_all(2);
  EXPECT_THROW(IntegerNetwork::compile(resnet), Error);
}

TEST(IntegerEngineTest, RejectsFullPrecisionLayers) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  s.model.registry().force_bits(0, 32);
  EXPECT_THROW(IntegerNetwork::compile(s.model), Error);
}

}  // namespace
}  // namespace ccq::hw
