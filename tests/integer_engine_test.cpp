// Tests for the integer inference engine: BN folding, code extraction,
// and — the headline property — parity with the float-simulated
// quantized forward pass.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "ccq/core/trainer.hpp"
#include "ccq/nn/loss.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/hw/integer_engine.hpp"
#include "ccq/models/resnet.hpp"
#include "ccq/models/simple.hpp"

namespace ccq::hw {
namespace {

/// Snap a batch of images to the engine's 8-bit input grid so the float
/// reference sees exactly the same inputs.
Tensor snap_input(Tensor x) {
  x.apply([](float v) {
    return std::clamp(std::round(v * 255.0f), 0.0f, 255.0f) / 255.0f;
  });
  return x;
}

struct EngineSetup {
  data::Dataset train;
  data::Dataset val;
  models::QuantModel model;
};

EngineSetup make_setup(quant::Policy policy, std::size_t ladder_floor_pos,
                 bool use_cnn = true) {
  data::SyntheticConfig dc;
  dc.num_classes = 5;
  dc.samples_per_class = 30;
  dc.height = dc.width = 8;
  dc.seed = 77;
  data::Dataset train = data::make_synthetic_vision(dc);
  data::Dataset val = train.take_tail(30);

  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = policy};
  quant::BitLadder ladder({8, 4, 2});
  auto model = use_cnn ? models::make_simple_cnn(mc, factory, ladder)
                       : models::make_mlp(mc, factory, ladder, 16);

  core::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 16;
  cfg.sgd = {.lr = 0.05, .momentum = 0.9, .weight_decay = 1e-4};
  core::train(model, train, val, cfg);
  model.registry().set_all(ladder_floor_pos);
  // A couple of quantization-aware epochs so BN stats and PACT clips
  // settle on the quantized network.
  core::TrainConfig ft;
  ft.epochs = 2;
  ft.batch_size = 16;
  ft.sgd = {.lr = 0.01, .momentum = 0.9, .weight_decay = 1e-4};
  core::train(model, train, val, ft);
  return EngineSetup{std::move(train), std::move(val), std::move(model)};
}

void expect_parity(EngineSetup& s, float logit_tol, float min_label_agreement) {
  Workspace ws;
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  const data::Batch batch = s.val.all();
  const Tensor x = snap_input(batch.images);

  s.model.set_training(false);
  const Tensor ref = s.model.forward(x, ws);
  const Tensor out = net.forward(x);
  ASSERT_EQ(out.shape(), ref.shape());

  // Logit-level closeness.
  float max_err = 0.0f;
  std::size_t agree = 0;
  const std::size_t n = out.dim(0), c = out.dim(1);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best_ref = 0, best_out = 0;
    for (std::size_t j = 0; j < c; ++j) {
      max_err = std::max(max_err, std::fabs(out(i, j) - ref(i, j)));
      if (ref(i, j) > ref(i, best_ref)) best_ref = j;
      if (out(i, j) > out(i, best_out)) best_out = j;
    }
    if (best_ref == best_out) ++agree;
  }
  EXPECT_LT(max_err, logit_tol);
  EXPECT_GE(static_cast<float>(agree) / static_cast<float>(n),
            min_label_agreement);
}

TEST(IntegerEngineTest, CompilesSimpleCnn) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  // 4 conv + gap + fc = 6 plans (BN/act folded into conv plans).
  EXPECT_EQ(net.layer_count(), 6u);
  EXPECT_EQ(net.plan(0).kind, IntLayerPlan::Kind::kConv);
  EXPECT_TRUE(net.plan(0).has_act);
  EXPECT_EQ(net.plan(5).kind, IntLayerPlan::Kind::kLinear);
  EXPECT_FALSE(net.plan(5).has_act);
}

TEST(IntegerEngineTest, WeightCodesFitTheBitWidth) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 2);  // 2-bit floor
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    const auto& plan = net.plan(l);
    if (plan.kind != IntLayerPlan::Kind::kConv &&
        plan.kind != IntLayerPlan::Kind::kLinear) {
      continue;
    }
    // Doubled codes of a 2-bit symmetric grid lie in {−2, 0, 2}.
    for (std::int32_t code : plan.weight_codes) {
      EXPECT_LE(std::abs(code), 2 * ((1 << (plan.weight_bits - 1)) - 1));
    }
  }
}

TEST(IntegerEngineTest, ParityMinMax4Bit) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  expect_parity(s, 0.05f, 0.95f);
}

TEST(IntegerEngineTest, ParityMinMax2Bit) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 2);
  expect_parity(s, 0.05f, 0.95f);
}

TEST(IntegerEngineTest, ParityPact4Bit) {
  // PACT uses DoReFa's half-offset weight grid — exercises code doubling.
  EngineSetup s = make_setup(quant::Policy::kPact, 1);
  expect_parity(s, 0.05f, 0.95f);
}

TEST(IntegerEngineTest, ParityWrpn8Bit) {
  EngineSetup s = make_setup(quant::Policy::kWrpn, 0);
  expect_parity(s, 0.05f, 0.95f);
}

TEST(IntegerEngineTest, ParityMlp) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1, /*use_cnn=*/false);
  expect_parity(s, 0.02f, 0.99f);
}

TEST(IntegerEngineTest, AccuracyMatchesFloatSimulation) {
  Workspace ws;
  EngineSetup s = make_setup(quant::Policy::kPact, 1);
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  const data::Batch batch = s.val.all();
  const Tensor x = snap_input(batch.images);
  s.model.set_training(false);
  const Tensor ref = s.model.forward(x, ws);
  const Tensor out = net.forward(x);
  const float ref_acc = nn::SoftmaxCrossEntropy::accuracy(ref, batch.labels);
  const float int_acc = nn::SoftmaxCrossEntropy::accuracy(out, batch.labels);
  EXPECT_NEAR(ref_acc, int_acc, 0.05f);
}

TEST(IntegerEngineTest, MacsPerSampleMatchesRegistry) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  std::size_t registry_macs = 0;
  for (std::size_t i = 0; i < s.model.registry().size(); ++i) {
    registry_macs += s.model.registry().unit(i).macs;
  }
  EXPECT_EQ(net.macs_per_sample(8, 8), registry_macs);
}

// ---- blocked igemm datapath vs the naive specification ---------------------

/// The headline igemm property at the engine level: the blocked packed-
/// panel forward must be BIT-identical to the naive int64 triple loop
/// (`forward_reference`) — same codes, same accumulation results, same
/// float epilogue — for every layer mix, bit floor and thread count.
void expect_bitwise_forward(EngineSetup& s) {
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  const Tensor x = snap_input(s.val.all().images);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const ExecContext ctx(threads);
    Workspace ws;
    const Tensor fast = net.forward(x, ws, ctx);
    const Tensor ref = net.forward_reference(x, ws, ctx);
    ASSERT_EQ(fast.shape(), ref.shape());
    const auto fp = fast.data();
    const auto rp = ref.data();
    for (std::size_t i = 0; i < fp.size(); ++i) {
      ASSERT_EQ(fp[i], rp[i])
          << "logit " << i << " diverged at threads=" << threads;
    }
  }
}

TEST(IntegerEngineTest, BlockedForwardBitIdenticalCnn4Bit) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  expect_bitwise_forward(s);
}

TEST(IntegerEngineTest, BlockedForwardBitIdenticalCnn2Bit) {
  EngineSetup s = make_setup(quant::Policy::kPact, 2);
  expect_bitwise_forward(s);
}

TEST(IntegerEngineTest, BlockedForwardBitIdenticalMlp) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 0, /*use_cnn=*/false);
  expect_bitwise_forward(s);
}

// ---- static accumulator selection ------------------------------------------

TEST(IntegerEngineTest, CompiledPlansCarryPackedPanelsAndAccum) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  IntegerNetwork net = IntegerNetwork::compile(s.model);
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    const auto& plan = net.plan(l);
    if (plan.kind != IntLayerPlan::Kind::kConv &&
        plan.kind != IntLayerPlan::Kind::kLinear) {
      continue;
    }
    ASSERT_FALSE(plan.panel.empty());
    ASSERT_EQ(plan.panel.rows * plan.panel.depth, plan.weight_codes.size());
    EXPECT_EQ(plan.panel.kernel, plan.igemm_kernel);
    // Auto selection must land on the kernel the registry would pick for
    // this layer's static bounds.
    EXPECT_EQ(plan.igemm_kernel,
              igemm_select_kernel(igemm_requested_kernel(), plan.max_abs_code,
                                  plan.in_code_bound, plan.accum));
    EXPECT_GT(plan.in_code_bound, 0);
    // This toy net's depths are tiny; every layer must pick int32.
    EXPECT_EQ(plan.accum, IgemmAccum::kInt32);
    EXPECT_TRUE(
        igemm_fits_int32(plan.max_abs_code, plan.in_code_bound,
                         plan.kind == IntLayerPlan::Kind::kConv
                             ? plan.in_channels * plan.kernel * plan.kernel
                             : plan.in_features));
  }
}

/// A synthetic linear plan at the exact overflow boundary.  Codes of
/// magnitude 255 against the 8-bit input bound (255) admit int32 up to
/// depth 33025 (255·255·33025 = 2,147,450,625 ≤ INT32_MAX); one feature
/// more must flip the plan to the int64 fallback.
IntLayerPlan boundary_linear_plan(std::size_t in_features) {
  IntLayerPlan plan;
  plan.kind = IntLayerPlan::Kind::kLinear;
  plan.name = "fc_boundary";
  plan.in_features = in_features;
  plan.out_features = 2;
  plan.weight_bits = 8;
  plan.weight_codes.assign(plan.out_features * in_features, 255);
  plan.channel_scale.assign(plan.out_features, 1e-6f);
  plan.bias.assign(plan.out_features, 0.0f);
  return plan;
}

TEST(IntegerEngineTest, AccumulatorSelectionAtTheOverflowBoundary) {
  const IntegerNetwork fits =
      IntegerNetwork::from_plans({boundary_linear_plan(33025)});
  EXPECT_EQ(fits.plan(0).accum, IgemmAccum::kInt32);
  EXPECT_EQ(fits.plan(0).max_abs_code, 255);
  EXPECT_EQ(fits.plan(0).in_code_bound, 255);

  const IntegerNetwork falls_back =
      IntegerNetwork::from_plans({boundary_linear_plan(33026)});
  EXPECT_EQ(falls_back.plan(0).accum, IgemmAccum::kInt64);
}

TEST(IntegerEngineTest, Int64FallbackLayerStaysExact) {
  // Worst-case inputs on the fallback layer: every activation snaps to
  // the top input code (255), every weight code is 255, so each of the
  // 33026 terms is 65025 and the true sum (2,147,548,650) exceeds
  // INT32_MAX — an int32 accumulator would wrap.  The engine must have
  // selected int64 and match the naive reference bit for bit.
  const std::size_t k = 33026;
  IntegerNetwork net = IntegerNetwork::from_plans({boundary_linear_plan(k)});
  ASSERT_EQ(net.plan(0).accum, IgemmAccum::kInt64);
  Tensor x({1, 1, 1, k});
  for (auto& v : x.data()) v = 1.0f;  // snaps to code 255 everywhere
  // The engine expects NCHW input, so flatten ahead of the linear plan.
  IntLayerPlan flat;
  flat.kind = IntLayerPlan::Kind::kFlatten;
  flat.name = "flatten@0";
  IntegerNetwork net2 =
      IntegerNetwork::from_plans({flat, boundary_linear_plan(k)});
  const Tensor fast = net2.forward(x);
  const Tensor ref = net2.forward_reference(x);
  ASSERT_EQ(fast.shape(), ref.shape());
  for (std::size_t i = 0; i < fast.data().size(); ++i) {
    EXPECT_EQ(fast.data()[i], ref.data()[i]);
  }
  // And the sum really does bust int32 — the fallback was load-bearing.
  EXPECT_GT(std::int64_t{255} * 255 * static_cast<std::int64_t>(k),
            std::int64_t{std::numeric_limits<std::int32_t>::max()});
}

// ---- kernel selection / env override ----------------------------------------

/// RAII save/restore of $CCQ_IGEMM_KERNEL so override tests cannot leak
/// a forced kernel into the rest of the suite.
struct KernelEnvGuard {
  KernelEnvGuard() {
    const char* cur = std::getenv("CCQ_IGEMM_KERNEL");
    had = cur != nullptr;
    if (had) saved = cur;
  }
  ~KernelEnvGuard() {
    if (had) {
      setenv("CCQ_IGEMM_KERNEL", saved.c_str(), 1);
    } else {
      unsetenv("CCQ_IGEMM_KERNEL");
    }
  }
  bool had = false;
  std::string saved;
};

TEST(IntegerEngineTest, KernelEnvOverridePinsEveryEligibleLayer) {
  KernelEnvGuard guard;
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  const Tensor x = snap_input(s.val.all().images);

  setenv("CCQ_IGEMM_KERNEL", "scalar", 1);
  IntegerNetwork scalar_net = IntegerNetwork::compile(s.model);
  for (std::size_t l = 0; l < scalar_net.layer_count(); ++l) {
    const auto& plan = scalar_net.plan(l);
    if (plan.kind != IntLayerPlan::Kind::kConv &&
        plan.kind != IntLayerPlan::Kind::kLinear) {
      continue;
    }
    EXPECT_EQ(plan.igemm_kernel, IgemmKernel::kScalar) << plan.name;
    EXPECT_EQ(plan.panel.kernel, IgemmKernel::kScalar) << plan.name;
  }

  setenv("CCQ_IGEMM_KERNEL", "vec16", 1);
  IntegerNetwork vec_net = IntegerNetwork::compile(s.model);
  bool saw_vec16 = false;
  for (std::size_t l = 0; l < vec_net.layer_count(); ++l) {
    const auto& plan = vec_net.plan(l);
    if (plan.kind != IntLayerPlan::Kind::kConv &&
        plan.kind != IntLayerPlan::Kind::kLinear) {
      continue;
    }
    // Eligible layers honour the override; ineligible ones (int64
    // accumulator, unknown bound) may legally fall back.
    if (plan.igemm_kernel == IgemmKernel::kVec16) saw_vec16 = true;
  }
  EXPECT_TRUE(saw_vec16) << "toy net has int32 layers; vec16 must engage";

  // The kernel choice must never change a single output bit.
  const Tensor a = scalar_net.forward(x);
  const Tensor b = vec_net.forward(x);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "logit " << i;
  }
}

TEST(IntegerEngineTest, UnknownKernelOverrideNamesTheAvailableOnes) {
  KernelEnvGuard guard;
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  setenv("CCQ_IGEMM_KERNEL", "tensor-core", 1);
  try {
    IntegerNetwork::compile(s.model);
    FAIL() << "expected ccq::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tensor-core"), std::string::npos);
    EXPECT_NE(what.find("vec-packed"), std::string::npos);
  }
}

// ---- encode_doubled envelope ------------------------------------------------

TEST(IntegerEngineTest, EncodeDoubledRejectsCodesOutsideTheEnvelope) {
  // A 2-bit grid with step 1 holds doubled codes in ±4; the value 3.0
  // encodes to 6 — the silent std::lround narrowing this used to hide.
  Tensor q({3});
  q.data()[0] = 1.0f;
  q.data()[1] = -2.0f;  // doubled code −4: exactly on the envelope, fine
  q.data()[2] = 3.0f;   // doubled code 6: out of envelope
  try {
    encode_doubled(q, 1.0f, 2, "conv1");
    FAIL() << "expected ccq::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("conv1"), std::string::npos);
    EXPECT_NE(what.find("envelope"), std::string::npos);
  }
  q.data()[2] = 2.0f;  // doubled code 4: back inside
  const auto codes = encode_doubled(q, 1.0f, 2, "conv1");
  EXPECT_EQ(codes, (std::vector<std::int32_t>{2, -4, 4}));
}

TEST(IntegerEngineTest, RejectsResidualTopologies) {
  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto resnet = models::make_resnet20(mc, factory, quant::BitLadder({8, 4, 2}));
  resnet.registry().set_all(2);
  EXPECT_THROW(IntegerNetwork::compile(resnet), Error);
}

TEST(IntegerEngineTest, RejectsFullPrecisionLayers) {
  EngineSetup s = make_setup(quant::Policy::kMinMax, 1);
  s.model.registry().force_bits(0, 32);
  EXPECT_THROW(IntegerNetwork::compile(s.model), Error);
}

TEST(IntegerEngineTest, CheckInputValidatesGeometryAgainstPlans) {
  // Hand-built conv(3→4,k3,p1) → maxpool(2/2) → flatten → linear(64→5):
  // the 3×8×8 input it was planned for propagates cleanly, everything
  // else names the first inconsistent layer without running inference.
  std::vector<IntLayerPlan> plans(4);
  plans[0].kind = IntLayerPlan::Kind::kConv;
  plans[0].name = "conv0";
  plans[0].in_channels = 3;
  plans[0].out_channels = 4;
  plans[0].kernel = 3;
  plans[0].stride = 1;
  plans[0].pad = 1;
  plans[0].weight_codes.assign(4 * 3 * 3 * 3, 1);
  plans[0].weight_bits = 8;
  plans[0].channel_scale.assign(4, 0.01f);
  plans[0].bias.assign(4, 0.0f);
  plans[1].kind = IntLayerPlan::Kind::kMaxPool;
  plans[1].name = "maxpool@1";
  plans[1].pool_kernel = 2;
  plans[1].pool_stride = 2;
  plans[2].kind = IntLayerPlan::Kind::kFlatten;
  plans[2].name = "flatten@2";
  plans[3].kind = IntLayerPlan::Kind::kLinear;
  plans[3].name = "fc";
  plans[3].in_features = 4 * 4 * 4;
  plans[3].out_features = 5;
  plans[3].weight_codes.assign(5 * 64, 1);
  plans[3].weight_bits = 8;
  plans[3].channel_scale.assign(5, 0.01f);
  plans[3].bias.assign(5, 0.0f);
  const IntegerNetwork net = IntegerNetwork::from_plans(std::move(plans));

  EXPECT_NO_THROW(net.check_input(3, 8, 8));

  const auto message_of = [&](std::size_t c, std::size_t h, std::size_t w) {
    try {
      net.check_input(c, h, w);
    } catch (const Error& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  // Wrong channel count names the conv.
  std::string msg = message_of(7, 8, 8);
  EXPECT_NE(msg.find("conv0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("channels"), std::string::npos) << msg;
  // Spatial dims that shrink to the wrong flattened width name the fc.
  msg = message_of(3, 4, 4);
  EXPECT_NE(msg.find("fc"), std::string::npos) << msg;
  // Zero and wrap-inducing dims are rejected up front.
  EXPECT_NE(message_of(3, 0, 8).find("zero dimension"), std::string::npos);
  msg = message_of(std::size_t{1} << 40, std::size_t{1} << 40, 1);
  EXPECT_NE(msg.find("overflows"), std::string::npos) << msg;
  // Spatial input smaller than the pool window names the pool.
  msg = message_of(3, 1, 1);
  EXPECT_NE(msg.find("maxpool@1"), std::string::npos) << msg;
}

}  // namespace
}  // namespace ccq::hw
