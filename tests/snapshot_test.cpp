// Tests for quantized-model snapshots (save/resume of CCQ results).
#include <gtest/gtest.h>

#include <cstdio>

#include "ccq/core/snapshot.hpp"
#include "ccq/core/trainer.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/simple.hpp"

namespace ccq::core {
namespace {

models::QuantModel make_model(std::uint64_t seed = 1) {
  models::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  mc.seed = seed;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  return models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4, 2}));
}

TEST(SnapshotTest, RoundTripsParametersAndPrecision) {
  auto model = make_model(1);
  // Put the model into a genuinely mixed state.
  model.registry().set_ladder_pos(0, 2);
  model.registry().set_ladder_pos(1, 1);
  model.registry().force_bits(2, 32);
  const std::string path = "/tmp/ccq_snapshot_test.bin";
  save_snapshot(model, path);

  auto other = make_model(99);  // different init, same structure
  ASSERT_TRUE(load_snapshot(other, path));
  EXPECT_EQ(other.registry().bits_of(0), 2);
  EXPECT_EQ(other.registry().bits_of(1), 4);
  EXPECT_EQ(other.registry().bits_of(2), 32);
  EXPECT_TRUE(other.registry().unit(2).frozen);
  EXPECT_EQ(other.registry().bits_of(3), 32);  // untouched: fp start

  auto pa = model.parameters();
  auto pb = other.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(max_abs_diff(pa[i]->value, pb[i]->value), 0.0f) << pa[i]->name;
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, RestoredModelComputesIdentically) {
  Workspace ws;
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.samples_per_class = 10;
  dc.height = dc.width = 8;
  data::Dataset ds = data::make_synthetic_vision(dc);

  auto model = make_model(2);
  model.registry().set_all(1);
  const std::string path = "/tmp/ccq_snapshot_eval_test.bin";
  save_snapshot(model, path);

  auto restored = make_model(77);
  ASSERT_TRUE(load_snapshot(restored, path));
  const data::Batch batch = ds.all();
  model.set_training(false);
  restored.set_training(false);
  EXPECT_EQ(max_abs_diff(model.forward(batch.images, ws),
                         restored.forward(batch.images, ws)),
            0.0f);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileReturnsFalse) {
  auto model = make_model(3);
  EXPECT_FALSE(load_snapshot(model, "/tmp/ccq_definitely_missing_snap.bin"));
}

TEST(SnapshotTest, OffLadderBitsRejected) {
  auto model = make_model(4);
  model.registry().set_all(1);
  const std::string path = "/tmp/ccq_snapshot_ladder_test.bin";
  save_snapshot(model, path);

  // A model with a different ladder cannot host this snapshot.
  models::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  auto other =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 3, 2}));
  EXPECT_THROW(load_snapshot(other, path), Error);
  std::remove(path.c_str());
}

TEST(SnapshotTest, BnRunningStatsRoundTrip) {
  Workspace ws;
  // Running statistics are buffers, not parameters — they must still be
  // persisted or a restored model evaluates with uncalibrated BN.
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.samples_per_class = 10;
  dc.height = dc.width = 8;
  data::Dataset ds = data::make_synthetic_vision(dc);

  auto model = make_model(5);
  // A few training batches move the running stats off their defaults.
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 8;
  data::Dataset val = ds.take_tail(8);
  core::train(model, ds, val, cfg);

  const std::string path = "/tmp/ccq_snapshot_bn_test.bin";
  save_snapshot(model, path);
  auto restored = make_model(6);
  ASSERT_TRUE(load_snapshot(restored, path));
  auto orig_buffers = model.net().buffers();
  auto rest_buffers = restored.net().buffers();
  ASSERT_EQ(orig_buffers.size(), rest_buffers.size());
  ASSERT_FALSE(orig_buffers.empty());
  for (std::size_t i = 0; i < orig_buffers.size(); ++i) {
    EXPECT_EQ(max_abs_diff(*orig_buffers[i].second, *rest_buffers[i].second),
              0.0f)
        << orig_buffers[i].first;
  }
  // Eval-mode forwards now agree too (uses the running stats).
  model.set_training(false);
  restored.set_training(false);
  const data::Batch batch = val.all();
  EXPECT_EQ(max_abs_diff(model.forward(batch.images, ws),
                         restored.forward(batch.images, ws)),
            0.0f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ccq::core
