// Tests for the model builders: shapes, registry wiring, MAC accounting.
#include <gtest/gtest.h>

#include "ccq/models/resnet.hpp"
#include "ccq/models/simple.hpp"
#include "ccq/nn/loss.hpp"

namespace ccq::models {
namespace {

ModelConfig tiny_config(std::size_t image = 8, float width = 0.25f) {
  ModelConfig c;
  c.num_classes = 10;
  c.image_size = image;
  c.width_multiplier = width;
  c.start_at_fp = true;
  return c;
}

quant::QuantFactory pact_factory() {
  return quant::QuantFactory{.policy = quant::Policy::kPact};
}

TEST(SimpleCnnTest, ForwardShapeAndRegistry) {
  Workspace ws;
  auto model = make_simple_cnn(tiny_config(), pact_factory(),
                               quant::BitLadder({8, 4, 2}));
  EXPECT_EQ(model.registry().size(), 5u);
  Rng rng(1);
  Tensor x = Tensor::rand_uniform({2, 3, 8, 8}, rng, 0.0f, 1.0f);
  const Tensor y = model.forward(x, ws);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
}

TEST(SimpleCnnTest, StartsAtFullPrecision) {
  auto model = make_simple_cnn(tiny_config(), pact_factory(),
                               quant::BitLadder({8, 4, 2}));
  for (std::size_t i = 0; i < model.registry().size(); ++i) {
    EXPECT_EQ(model.registry().bits_of(i), 32);
  }
  EXPECT_NEAR(model.registry().compression_ratio(), 1.0, 1e-9);
}

TEST(SimpleCnnTest, BackwardProducesInputGradient) {
  Workspace ws;
  auto model = make_simple_cnn(tiny_config(), pact_factory(),
                               quant::BitLadder({8, 4, 2}));
  Rng rng(2);
  Tensor x = Tensor::rand_uniform({2, 3, 8, 8}, rng, 0.0f, 1.0f);
  nn::SoftmaxCrossEntropy loss;
  const Tensor logits = model.forward(x, ws);
  loss.forward(logits, {0, 1});
  const Tensor gx = model.backward(loss.backward(), ws);
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_FALSE(gx.has_nonfinite());
}

TEST(MlpTest, RegistryHasThreeUnits) {
  Workspace ws;
  auto model = make_mlp(tiny_config(), pact_factory(),
                        quant::BitLadder({8, 4, 2}), 16);
  EXPECT_EQ(model.registry().size(), 3u);
  Rng rng(3);
  Tensor x = Tensor::rand_uniform({4, 3, 8, 8}, rng, 0.0f, 1.0f);
  EXPECT_EQ(model.forward(x, ws).shape(), (Shape{4, 10}));
}

TEST(ResNet20Test, LayerCountMatchesTopology) {
  auto model = make_resnet20(tiny_config(16), pact_factory(),
                             quant::BitLadder({8, 4, 2}));
  // stem + 9 blocks × 2 convs + 2 projection shortcuts + fc = 22 units.
  EXPECT_EQ(model.registry().size(), 22u);
  EXPECT_EQ(model.name(), "ResNet20");
}

TEST(ResNet20Test, ForwardShape) {
  Workspace ws;
  auto model = make_resnet20(tiny_config(16), pact_factory(),
                             quant::BitLadder({8, 4, 2}));
  Rng rng(4);
  Tensor x = Tensor::rand_uniform({2, 3, 16, 16}, rng, 0.0f, 1.0f);
  EXPECT_EQ(model.forward(x, ws).shape(), (Shape{2, 10}));
}

TEST(ResNet20Test, QuantizedForwardStaysFinite) {
  Workspace ws;
  auto model = make_resnet20(tiny_config(16), pact_factory(),
                             quant::BitLadder({8, 4, 2}));
  model.registry().set_all(2);  // everything at 2 bits
  Rng rng(5);
  Tensor x = Tensor::rand_uniform({2, 3, 16, 16}, rng, 0.0f, 1.0f);
  const Tensor y = model.forward(x, ws);
  EXPECT_FALSE(y.has_nonfinite());
  EXPECT_NEAR(model.registry().compression_ratio(), 16.0, 1e-6);
}

TEST(ResNet18Test, LayerCountMatchesTopology) {
  Workspace ws;
  auto model = make_resnet18(tiny_config(16, 0.125f), pact_factory(),
                             quant::BitLadder({8, 4, 2}));
  // stem + 8 blocks × 2 convs + 3 projections + fc = 21 units.
  EXPECT_EQ(model.registry().size(), 21u);
  Rng rng(6);
  Tensor x = Tensor::rand_uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
  EXPECT_EQ(model.forward(x, ws).shape(), (Shape{1, 10}));
}

TEST(ResNet50Test, LayerCountMatchesTopology) {
  Workspace ws;
  auto model = make_resnet50(tiny_config(16, 0.0625f), pact_factory(),
                             quant::BitLadder({8, 4, 2}));
  // stem + 16 bottlenecks × 3 convs + 4 projections + fc = 54 units.
  EXPECT_EQ(model.registry().size(), 54u);
  Rng rng(7);
  Tensor x = Tensor::rand_uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
  EXPECT_EQ(model.forward(x, ws).shape(), (Shape{1, 10}));
}

TEST(ResNetTest, MacsArePositiveAndOrdered) {
  auto model = make_resnet20(tiny_config(16), pact_factory(),
                             quant::BitLadder({8, 4, 2}));
  std::size_t total = 0;
  for (std::size_t i = 0; i < model.registry().size(); ++i) {
    EXPECT_GT(model.registry().unit(i).macs, 0u) << i;
    total += model.registry().unit(i).macs;
  }
  // Stem conv on a 16×16 input: 3·3·3 patch × 256 pixels × stem channels.
  const auto& stem = model.registry().unit(0);
  EXPECT_EQ(stem.macs, 27u * 256u * (stem.weight_count / 27u));
  EXPECT_GT(total, stem.macs * 5);
}

TEST(ResNetTest, WidthMultiplierScalesParameters) {
  auto narrow = make_resnet20(tiny_config(16, 0.25f), pact_factory(),
                              quant::BitLadder({8, 4, 2}));
  auto wide = make_resnet20(tiny_config(16, 0.5f), pact_factory(),
                            quant::BitLadder({8, 4, 2}));
  EXPECT_GT(wide.registry().total_weights(),
            2 * narrow.registry().total_weights());
}

TEST(ResNetTest, DeterministicInitialisation) {
  Workspace ws;
  auto a = make_resnet20(tiny_config(16), pact_factory(),
                         quant::BitLadder({8, 4, 2}));
  auto b = make_resnet20(tiny_config(16), pact_factory(),
                         quant::BitLadder({8, 4, 2}));
  Rng rng(8);
  Tensor x = Tensor::rand_uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
  a.set_training(false);
  b.set_training(false);
  EXPECT_EQ(max_abs_diff(a.forward(x, ws), b.forward(x, ws)), 0.0f);
}

TEST(ResNetTest, UniqueParameterNames) {
  auto model = make_resnet50(tiny_config(8, 0.0625f), pact_factory(),
                             quant::BitLadder({8, 4, 2}));
  std::set<std::string> names;
  for (const auto* p : model.parameters()) {
    EXPECT_TRUE(names.insert(p->name).second) << "duplicate " << p->name;
  }
}

TEST(ResNetTest, LastUnitIsTheClassifier) {
  auto model = make_resnet20(tiny_config(16), pact_factory(),
                             quant::BitLadder({8, 4, 2}));
  const auto& last = model.registry().unit(model.registry().size() - 1);
  EXPECT_EQ(last.name.substr(0, 2), "fc");
  EXPECT_EQ(last.act, nullptr);
}

TEST(ResNetTest, StartOnLadderWhenConfigured) {
  ModelConfig c = tiny_config(16);
  c.start_at_fp = false;
  auto model = make_resnet20(c, pact_factory(), quant::BitLadder({8, 4, 2}));
  for (std::size_t i = 0; i < model.registry().size(); ++i) {
    EXPECT_EQ(model.registry().bits_of(i), 8);
  }
}

}  // namespace
}  // namespace ccq::models
