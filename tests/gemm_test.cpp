// Tests for the GEMM kernel and the im2col/col2im lowering.
#include <gtest/gtest.h>

#include "ccq/tensor/gemm.hpp"
#include "ccq/tensor/im2col.hpp"

namespace ccq {
namespace {

/// Reference O(n³) matmul for cross-checking the blocked kernel.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a(i, p) * b(p, j);
      c(i, j) = acc;
    }
  }
  return c;
}

TEST(GemmTest, MatchesNaiveSmall) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(GemmTest, MatchesNaiveOnOddSizes) {
  Rng rng(1);
  // Sizes straddle the blocking boundaries (64/128/256).
  for (auto [m, k, n] : {std::tuple<int, int, int>{65, 130, 257},
                         {1, 1, 1},
                         {7, 300, 3},
                         {128, 64, 256}}) {
    Tensor a = Tensor::randn({static_cast<std::size_t>(m),
                              static_cast<std::size_t>(k)},
                             rng);
    Tensor b = Tensor::randn({static_cast<std::size_t>(k),
                              static_cast<std::size_t>(n)},
                             rng);
    EXPECT_LT(max_abs_diff(matmul(a, b), naive_matmul(a, b)), 1e-3f)
        << m << "x" << k << "x" << n;
  }
}

TEST(GemmTest, BetaAccumulates) {
  Tensor a({1, 2}, std::vector<float>{1, 1});
  Tensor b({2, 1}, std::vector<float>{1, 1});
  Tensor c({1, 1}, std::vector<float>{10});
  gemm(1, 1, 2, 1.0f, a.data().data(), 2, b.data().data(), 1, 1.0f,
       c.data().data(), 1);
  EXPECT_FLOAT_EQ(c(0, 0), 12.0f);
}

TEST(GemmTest, AlphaScales) {
  Tensor a({1, 1}, std::vector<float>{3});
  Tensor b({1, 1}, std::vector<float>{4});
  Tensor c({1, 1});
  gemm(1, 1, 1, 0.5f, a.data().data(), 1, b.data().data(), 1, 0.0f,
       c.data().data(), 1);
  EXPECT_FLOAT_EQ(c(0, 0), 6.0f);
}

TEST(GemmTest, ShapeValidation) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), Error);
  Tensor c({2, 3, 1});
  EXPECT_THROW(matmul(c, a), Error);
}

TEST(GemmTest, TransposedVariantsAgree) {
  Rng rng(2);
  Tensor a = Tensor::randn({5, 7}, rng);
  Tensor b = Tensor::randn({5, 6}, rng);
  // matmul_tn(a, b) == aᵀ·b
  Tensor expected = naive_matmul(transpose2d(a), b);
  EXPECT_LT(max_abs_diff(matmul_tn(a, b), expected), 1e-4f);

  Tensor d = Tensor::randn({6, 7}, rng);
  // matmul_nt(aᵀ·shape..., d) == x·dᵀ with x (5×7), d (6×7)
  Tensor x = Tensor::randn({5, 7}, rng);
  Tensor expected2 = naive_matmul(x, transpose2d(d));
  EXPECT_LT(max_abs_diff(matmul_nt(x, d), expected2), 1e-4f);
}

TEST(GemmTest, TransposeRoundTrip) {
  Rng rng(3);
  Tensor a = Tensor::randn({4, 9}, rng);
  EXPECT_EQ(max_abs_diff(transpose2d(transpose2d(a)), a), 0.0f);
}

TEST(ConvGeometryTest, OutputDims) {
  ConvGeometry g{.in_channels = 3, .in_h = 32, .in_w = 32, .kernel = 3,
                 .stride = 1, .pad = 1};
  EXPECT_EQ(g.out_h(), 32u);
  EXPECT_EQ(g.out_w(), 32u);
  g.stride = 2;
  EXPECT_EQ(g.out_h(), 16u);
  EXPECT_EQ(g.patch_size(), 27u);
}

TEST(ConvGeometryTest, KernelLargerThanInputThrows) {
  ConvGeometry g{.in_channels = 1, .in_h = 2, .in_w = 2, .kernel = 5,
                 .stride = 1, .pad = 0};
  EXPECT_THROW(g.out_h(), Error);
}

TEST(Im2ColTest, IdentityKernelCopiesImage) {
  // 1×1 kernel, stride 1, no pad: columns == image.
  ConvGeometry g{.in_channels = 2, .in_h = 3, .in_w = 3, .kernel = 1,
                 .stride = 1, .pad = 0};
  std::vector<float> image(18);
  for (std::size_t i = 0; i < image.size(); ++i) image[i] = static_cast<float>(i);
  std::vector<float> cols(g.patch_size() * g.out_spatial());
  im2col(image.data(), g, cols.data());
  for (std::size_t i = 0; i < image.size(); ++i) {
    EXPECT_EQ(cols[i], image[i]);
  }
}

TEST(Im2ColTest, PaddingProducesZeros) {
  ConvGeometry g{.in_channels = 1, .in_h = 2, .in_w = 2, .kernel = 3,
                 .stride = 1, .pad = 1};
  std::vector<float> image{1, 2, 3, 4};
  std::vector<float> cols(g.patch_size() * g.out_spatial());
  im2col(image.data(), g, cols.data());
  // Kernel position (0,0) at output (0,0) reads the padded corner.
  EXPECT_EQ(cols[0], 0.0f);
  // Centre kernel position (1,1) at output (0,0) reads pixel (0,0).
  const std::size_t centre_row = 1 * 3 + 1;
  EXPECT_EQ(cols[centre_row * g.out_spatial() + 0], 1.0f);
}

TEST(Im2ColTest, Col2ImIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity,
  // which is exactly what conv backward relies on.
  Rng rng(4);
  ConvGeometry g{.in_channels = 3, .in_h = 6, .in_w = 5, .kernel = 3,
                 .stride = 2, .pad = 1};
  const std::size_t img_n = g.in_channels * g.in_h * g.in_w;
  const std::size_t col_n = g.patch_size() * g.out_spatial();
  Tensor x = Tensor::randn({img_n}, rng);
  Tensor y = Tensor::randn({col_n}, rng);
  std::vector<float> cols(col_n);
  im2col(x.data().data(), g, cols.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < col_n; ++i) lhs += cols[i] * y(i);
  std::vector<float> back(img_n, 0.0f);
  col2im(y.data().data(), g, back.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < img_n; ++i) rhs += x(i) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace ccq
