// Tests for the power-iteration Hessian analysis and the HAWQ baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ccq/core/hessian.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/data/toy.hpp"
#include "ccq/models/simple.hpp"

namespace ccq::core {
namespace {

struct HessianSetup {
  data::Dataset train;
  data::Dataset val;
  models::QuantModel model;
};

HessianSetup make_setup() {
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.samples_per_class = 40;
  dc.height = dc.width = 8;
  dc.seed = 3;
  data::Dataset train = data::make_synthetic_vision(dc);
  data::Dataset val = train.take_tail(40);

  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  models::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  auto model = models::make_mlp(mc, factory, quant::BitLadder({8, 4, 2}), 16);

  TrainConfig pre;
  pre.epochs = 5;
  pre.batch_size = 16;
  pre.sgd = {.lr = 0.05, .momentum = 0.9, .weight_decay = 1e-4};
  core::train(model, train, val, pre);
  return HessianSetup{std::move(train), std::move(val), std::move(model)};
}

TEST(HessianTest, EigenvaluesAreFiniteAndMostlyPositive) {
  HessianSetup s = make_setup();
  HessianConfig config;
  config.power_iterations = 5;
  config.sample_count = 80;
  const auto spectrum = hessian_spectrum(s.model, s.train, config);
  ASSERT_EQ(spectrum.size(), s.model.registry().size());
  for (double lambda : spectrum) {
    EXPECT_TRUE(std::isfinite(lambda));
  }
  // At a trained (near-minimum) point the top curvature should be
  // positive for at least one layer.
  EXPECT_GT(*std::max_element(spectrum.begin(), spectrum.end()), 0.0);
}

TEST(HessianTest, DeterministicForFixedSeed) {
  HessianSetup s = make_setup();
  HessianConfig config;
  config.power_iterations = 4;
  config.sample_count = 60;
  const double a = hessian_top_eigenvalue(s.model, s.train, 0, config);
  const double b = hessian_top_eigenvalue(s.model, s.train, 0, config);
  EXPECT_NEAR(a, b, 1e-6 * std::max(1.0, std::fabs(a)));
}

TEST(HessianTest, RestoresWeightsAndGradients) {
  HessianSetup s = make_setup();
  auto params = s.model.parameters();
  std::vector<Tensor> before;
  for (auto* p : params) before.push_back(p->value);
  HessianConfig config;
  config.power_iterations = 3;
  config.sample_count = 40;
  hessian_top_eigenvalue(s.model, s.train, 1, config);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(max_abs_diff(params[i]->value, before[i]), 0.0f)
        << params[i]->name;
    EXPECT_EQ(params[i]->grad.max(), 0.0f);
    EXPECT_EQ(params[i]->grad.min(), 0.0f);
  }
}

TEST(HessianTest, PowerIterationConvergesTowardTopCurvature) {
  // More iterations should not *decrease* the Rayleigh quotient much:
  // power iteration climbs toward the dominant eigenvalue.
  HessianSetup s = make_setup();
  HessianConfig few;
  few.power_iterations = 1;
  few.sample_count = 80;
  HessianConfig many = few;
  many.power_iterations = 10;
  const double l1 = hessian_top_eigenvalue(s.model, s.train, 0, few);
  const double l10 = hessian_top_eigenvalue(s.model, s.train, 0, many);
  EXPECT_GE(l10, l1 - 0.1 * std::fabs(l1) - 1e-6);
}

TEST(HessianTest, ValidatesConfig) {
  HessianSetup s = make_setup();
  HessianConfig bad;
  bad.power_iterations = 0;
  EXPECT_THROW(hessian_top_eigenvalue(s.model, s.train, 0, bad), Error);
  bad.power_iterations = 1;
  bad.fd_eps = 0.0;
  EXPECT_THROW(hessian_top_eigenvalue(s.model, s.train, 0, bad), Error);
}

TEST(HawqHessianTest, ProducesMixedPrecisionAndReasonableAccuracy) {
  HessianSetup s = make_setup();
  TrainConfig ft;
  ft.epochs = 3;
  ft.batch_size = 16;
  ft.sgd = {.lr = 0.02, .momentum = 0.9, .weight_decay = 1e-4};
  HessianConfig config;
  config.power_iterations = 4;
  config.sample_count = 60;
  const HawqResult r =
      hawq_hessian_quantize(s.model, s.train, s.val, ft, config);
  EXPECT_EQ(r.eigenvalues.size(), s.model.registry().size());
  EXPECT_GT(r.compression, 1.0);
  std::set<int> bits;
  for (std::size_t i = 0; i < s.model.registry().size(); ++i) {
    bits.insert(s.model.registry().bits_of(i));
  }
  EXPECT_GT(bits.size(), 1u);  // genuinely mixed precision
  EXPECT_GT(r.accuracy, 0.3f);
}

}  // namespace
}  // namespace ccq::core
