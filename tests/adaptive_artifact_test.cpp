// Multi-point (CCQA v3) artifact tests: building serving rungs from a
// controller rung trail, the headline reconstruction property (every
// rung of a multi-point artifact is bit-identical — codes, requant
// parameters and served outputs — to a single-point export of the same
// configuration, across kernels × thread counts), the size budget,
// version negotiation at every truncation point, and trail persistence
// through snapshots and controller state.
//
// Labelled `adaptive` and run on both CI legs plus the TSan quick tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "ccq/common/error.hpp"
#include "ccq/common/exec.hpp"
#include "ccq/common/workspace.hpp"
#include "ccq/core/controller.hpp"
#include "ccq/core/snapshot.hpp"
#include "ccq/core/trail.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/simple.hpp"
#include "ccq/serve/artifact.hpp"

namespace ccq::serve {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

Tensor make_inputs(std::size_t n, std::size_t channels = 3,
                   std::size_t hw = 8) {
  Tensor x({n, channels, hw, hw});
  auto data = x.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>((i * 2654435761u >> 8) & 255u) / 255.0f;
  }
  return x;
}

/// A small quantized CNN with a mixed 8/4/2 allocation (layer i at
/// ladder position i mod 3), calibrated with one training-mode forward.
/// Same recipe as serve_test.cpp.
models::QuantModel make_mixed_model() {
  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4, 2}));
  quant::LayerRegistry& registry = model.registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    registry.set_ladder_pos(i, i % 3);
  }
  Workspace ws;
  model.set_training(true);
  model.forward(make_inputs(16), ws);
  model.set_training(false);
  return model;
}

/// The descent that would have produced make_mixed_model's allocation:
/// starting from everything at ladder position 0, each layer with a
/// non-zero final position was re-binned once, in layer order.
core::RungTrail trail_for(const models::QuantModel& model) {
  const quant::LayerRegistry& registry = model.registry();
  core::RungTrail trail;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    if (registry.unit(i).ladder_pos == 0) continue;
    core::TrailStep step;
    step.layer = i;
    step.ladder_pos = registry.unit(i).ladder_pos;
    step.val_acc = 0.9f - 0.05f * static_cast<float>(trail.size());
    trail.push_back(step);
  }
  return trail;
}

/// Ladder positions of trail configuration t (all-0 plus the first t
/// steps) — the same replay build_multipoint performs.
std::vector<std::size_t> config_at(const quant::LayerRegistry& registry,
                                   const core::RungTrail& trail,
                                   std::size_t t) {
  std::vector<std::size_t> pos(registry.size(), 0);
  for (std::size_t s = 0; s < t; ++s) pos[trail[s].layer] = trail[s].ladder_pos;
  return pos;
}

void apply_config(quant::LayerRegistry& registry,
                  const std::vector<std::size_t>& pos) {
  for (std::size_t i = 0; i < registry.size(); ++i) {
    if (registry.unit(i).ladder_pos != pos[i]) {
      registry.set_ladder_pos(i, pos[i]);
    }
  }
}

float max_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  float diff = 0.0f;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    diff = std::max(diff, std::abs(da[i] - db[i]));
  }
  return diff;
}

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

/// RAII save/restore of $CCQ_IGEMM_KERNEL (kernel sweeps must not leak
/// a forced kernel into the rest of the suite).
struct KernelEnvGuard {
  KernelEnvGuard() {
    const char* cur = std::getenv("CCQ_IGEMM_KERNEL");
    had = cur != nullptr;
    if (had) saved = cur;
  }
  ~KernelEnvGuard() {
    if (had) {
      setenv("CCQ_IGEMM_KERNEL", saved.c_str(), 1);
    } else {
      unsetenv("CCQ_IGEMM_KERNEL");
    }
  }
  bool had = false;
  std::string saved;
};

// ---- multi-point build -----------------------------------------------------

TEST(MultiPointBuildTest, BuildsRequestedRungsAndRestoresTheModel) {
  auto model = make_mixed_model();
  const core::RungTrail trail = trail_for(model);
  ASSERT_GE(trail.size(), 2u);
  std::vector<std::size_t> before;
  for (std::size_t i = 0; i < model.registry().size(); ++i) {
    before.push_back(model.registry().unit(i).ladder_pos);
  }

  // A loose budget keeps the candidates at full span, so rung 0 is the
  // trail's very first configuration (everything at ladder position 0).
  MultiPointOptions options;
  options.size_budget = 4.0;
  const hw::IntegerNetwork net = build_multipoint(model, trail, options);
  EXPECT_EQ(net.rung_count(), 3u);
  // The base rung is the final configuration; rung 0 the earliest.
  EXPECT_EQ(net.rung_info(net.rung_count() - 1).trail_step, -1);
  EXPECT_EQ(net.rung_info(0).trail_step, 0);
  // Rung 0 is configuration 0: every competing layer at ladder position
  // 0, i.e. 8-bit weights on every conv/linear layer.
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const hw::IntLayerPlan& plan = net.plan(0, i);
    if (plan.kind == hw::IntLayerPlan::Kind::kConv ||
        plan.kind == hw::IntLayerPlan::Kind::kLinear) {
      EXPECT_EQ(plan.weight_bits, 8) << plan.name;
    }
  }
  // The registry is back where it was.
  for (std::size_t i = 0; i < model.registry().size(); ++i) {
    EXPECT_EQ(model.registry().unit(i).ladder_pos, before[i]);
  }
}

TEST(MultiPointBuildTest, EmptyTrailThrowsWithRegenerationHint) {
  auto model = make_mixed_model();
  const std::string message =
      error_message([&] { build_multipoint(model, {}, {}); });
  EXPECT_NE(message.find("rung trail"), std::string::npos) << message;
}

TEST(MultiPointBuildTest, TrailDisagreeingWithTheModelThrows) {
  auto model = make_mixed_model();
  core::RungTrail trail = trail_for(model);
  trail.pop_back();  // final config no longer matches the model
  const std::string message =
      error_message([&] { build_multipoint(model, trail, {}); });
  EXPECT_NE(message.find("disagree"), std::string::npos) << message;
}

// ---- the reconstruction property -------------------------------------------

// Every rung rebuilt from a multi-point artifact must be bit-identical
// to a single-point export of the same configuration: same codes, same
// requant parameters, same served outputs — for every kernel variant and
// thread count.  This is what makes the adaptive controller's rung
// switches accuracy-priced rather than numerically novel.
TEST(AdaptiveArtifactTest, EveryRungMatchesItsSinglePointExport) {
  KernelEnvGuard guard;
  auto model = make_mixed_model();
  const core::RungTrail trail = trail_for(model);
  const std::string multi_path = temp_path("ccq_adaptive_multi.ccqa");
  export_artifact(build_multipoint(model, trail, {}), multi_path);

  // Single-point exports of each rung's configuration, written while
  // the registry sits at that configuration (ending at the final one,
  // which restores the model).
  const hw::IntegerNetwork probe = load_artifact(multi_path);
  std::vector<std::string> single_paths;
  for (std::size_t r = 0; r < probe.rung_count(); ++r) {
    const std::int32_t t = probe.rung_info(r).trail_step;
    apply_config(model.registry(),
                 config_at(model.registry(), trail,
                           t < 0 ? trail.size() : static_cast<std::size_t>(t)));
    single_paths.push_back(temp_path("ccq_adaptive_single_" +
                                     std::to_string(r) + ".ccqa"));
    export_artifact(model, single_paths.back());
  }

  const Tensor x = make_inputs(4);
  for (const char* kernel : {"scalar", "vec16", "vec-packed"}) {
    setenv("CCQ_IGEMM_KERNEL", kernel, 1);
    const hw::IntegerNetwork multi = load_artifact(multi_path);
    ASSERT_EQ(multi.rung_count(), single_paths.size());
    for (std::size_t r = 0; r < multi.rung_count(); ++r) {
      const hw::IntegerNetwork single = load_artifact(single_paths[r]);
      ASSERT_EQ(single.layer_count(), multi.layer_count());
      for (std::size_t i = 0; i < multi.layer_count(); ++i) {
        const hw::IntLayerPlan& m = multi.plan(r, i);
        const hw::IntLayerPlan& s = single.plan(i);
        EXPECT_EQ(m.weight_bits, s.weight_bits) << m.name;
        EXPECT_EQ(m.weight_codes, s.weight_codes) << m.name;
        EXPECT_EQ(m.channel_scale, s.channel_scale) << m.name;
        EXPECT_EQ(m.bias, s.bias) << m.name;
        EXPECT_EQ(m.requant_fused, s.requant_fused) << m.name;
        ASSERT_EQ(m.requant.size(), s.requant.size()) << m.name;
        for (std::size_t c = 0; c < m.requant.size(); ++c) {
          EXPECT_EQ(m.requant[c].multiplier, s.requant[c].multiplier);
          EXPECT_EQ(m.requant[c].shift, s.requant[c].shift);
          EXPECT_EQ(m.requant[c].bias, s.requant[c].bias);
        }
      }
      for (const std::size_t threads : {1u, 2u, 4u}) {
        Workspace ws;
        const ExecContext ctx(threads);
        const Tensor from_multi = multi.forward(x, ws, ctx, r);
        const Tensor from_single = single.forward(x, ws, ctx);
        const Tensor oracle = multi.forward_reference(x, ws, ctx, r);
        EXPECT_EQ(max_diff(from_multi, from_single), 0.0f)
            << kernel << " rung " << r << " threads " << threads;
        EXPECT_EQ(max_diff(from_multi, oracle), 0.0f)
            << kernel << " rung " << r << " threads " << threads;
      }
    }
  }
}

TEST(AdaptiveArtifactTest, MeetsTheSizeBudget) {
  auto model = make_mixed_model();
  const core::RungTrail trail = trail_for(model);
  const std::string multi_path = temp_path("ccq_adaptive_budget.ccqa");
  const std::string single_path = temp_path("ccq_adaptive_budget_single.ccqa");
  const MultiPointOptions options;  // 3 rungs, 1.5x
  export_artifact(build_multipoint(model, trail, options), multi_path);
  export_artifact(model, single_path);  // final configuration
  const auto multi_bytes = fs::file_size(multi_path);
  const auto single_bytes = fs::file_size(single_path);
  EXPECT_LE(static_cast<double>(multi_bytes),
            options.size_budget * static_cast<double>(single_bytes))
      << multi_bytes << " vs " << single_bytes;
  // And it genuinely carries 3 rungs at that size.
  EXPECT_EQ(load_artifact(multi_path).rung_count(), 3u);
}

TEST(AdaptiveArtifactTest, UnmeetableBudgetThrowsNamingTheBudget) {
  auto model = make_mixed_model();
  const core::RungTrail trail = trail_for(model);
  MultiPointOptions options;
  options.size_budget = 1.0;  // no headroom for any delta
  const std::string message =
      error_message([&] { build_multipoint(model, trail, options); });
  EXPECT_NE(message.find("size budget"), std::string::npos) << message;
}

// ---- inspection ------------------------------------------------------------

TEST(AdaptiveArtifactTest, InspectDescribesBothVersions) {
  auto model = make_mixed_model();
  const std::string v2_path = temp_path("ccq_adaptive_inspect_v2.ccqa");
  const std::string v3_path = temp_path("ccq_adaptive_inspect_v3.ccqa");
  export_artifact(model, v2_path);
  const core::RungTrail trail = trail_for(model);
  export_artifact(build_multipoint(model, trail, {}), v3_path);

  const ArtifactInfo v2 = inspect_artifact(v2_path);
  EXPECT_EQ(v2.version, kArtifactVersion);
  EXPECT_EQ(v2.rung_count, 1u);
  EXPECT_EQ(v2.file_bytes, fs::file_size(v2_path));
  EXPECT_GT(v2.float_bytes, v2.file_bytes);  // packing must compress

  const ArtifactInfo v3 = inspect_artifact(v3_path);
  EXPECT_EQ(v3.version, kArtifactVersionMulti);
  EXPECT_EQ(v3.rung_count, 3u);
  EXPECT_EQ(v3.layer_count, v2.layer_count);
  EXPECT_EQ(v3.float_bytes, v2.float_bytes);  // geometry is rung-invariant
  ASSERT_EQ(v3.rungs.size(), 3u);
  EXPECT_EQ(v3.rungs.back().trail_step, -1);
  for (const ArtifactLayerInfo& layer : v3.layers) {
    EXPECT_EQ(layer.weight_bits.size(), 3u) << layer.name;
    EXPECT_EQ(layer.act_bits.size(), 3u) << layer.name;
    EXPECT_EQ(layer.requant_fused.size(), 3u) << layer.name;
  }
}

// ---- version negotiation and truncation ------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(AdaptiveArtifactTest, UnsupportedVersionsFailBeforeThePayload) {
  auto model = make_mixed_model();
  const std::string path = temp_path("ccq_adaptive_version.ccqa");
  export_artifact(model, path);
  const std::string original = read_file(path);

  // Versions below and above the supported set; v4 exercises the
  // forward direction (a newer exporter meeting this reader).
  for (const std::uint32_t bad : {1u, 4u, 99u}) {
    std::string bytes = original;
    std::memcpy(bytes.data() + 4, &bad, sizeof(bad));
    // Corrupt the payload too: negotiation must fire before any payload
    // byte is parsed, so the corruption must never be reached.
    bytes[bytes.size() - 1] = static_cast<char>(~bytes[bytes.size() - 1]);
    write_file(path, bytes);
    const std::string message = error_message([&] { load_artifact(path); });
    EXPECT_NE(message.find("version " + std::to_string(bad)),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("version 2"), std::string::npos) << message;
    EXPECT_NE(message.find("version 3"), std::string::npos) << message;
    EXPECT_NE(message.find("regenerate"), std::string::npos) << message;
    // inspect negotiates identically.
    EXPECT_NE(error_message([&] { inspect_artifact(path); })
                  .find("version " + std::to_string(bad)),
              std::string::npos);
  }
}

TEST(AdaptiveArtifactTest, TruncationAtEveryPointIsDiagnosed) {
  auto model = make_mixed_model();
  const core::RungTrail trail = trail_for(model);
  const std::string path = temp_path("ccq_adaptive_truncation.ccqa");
  export_artifact(build_multipoint(model, trail, {}), path);
  const std::string original = read_file(path);

  // Every header truncation point (the header is 28 bytes), then a
  // sweep of payload truncations including one-byte-short.
  std::vector<std::size_t> cuts;
  for (std::size_t len = 0; len < 28; ++len) cuts.push_back(len);
  for (std::size_t len = 28; len < original.size();
       len += std::max<std::size_t>(1, (original.size() - 28) / 16)) {
    cuts.push_back(len);
  }
  cuts.push_back(original.size() - 1);
  for (const std::size_t len : cuts) {
    write_file(path, original.substr(0, len));
    const std::string message = error_message([&] { load_artifact(path); });
    EXPECT_FALSE(message.empty()) << "no error at " << len << " bytes";
    EXPECT_NE(message.find(path), std::string::npos) << message;
  }

  // Trailing garbage after a well-formed payload is rejected too.
  write_file(path, original + std::string(3, 'x'));
  EXPECT_NE(error_message([&] { load_artifact(path); }).find("truncated"),
            std::string::npos);
}

// ---- trail persistence -----------------------------------------------------

TEST(TrailPersistenceTest, SnapshotRoundTripsTheTrail) {
  auto model = make_mixed_model();
  const core::RungTrail trail = trail_for(model);
  const std::string path = temp_path("ccq_adaptive_trail_snapshot.bin");
  core::save_snapshot(model, path, trail);
  EXPECT_EQ(core::load_trail(path), trail);
  // The reserved record must not break ordinary snapshot loading.
  auto reload = make_mixed_model();
  EXPECT_TRUE(core::load_snapshot(reload, path));

  // Trail-less snapshots (old writers) read back as an empty trail.
  core::save_snapshot(model, path);
  EXPECT_TRUE(core::load_trail(path).empty());
}

TEST(TrailPersistenceTest, ControllerRecordsPicksAndPersistsState) {
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.samples_per_class = 20;
  dc.height = dc.width = 8;
  dc.seed = 5;
  data::Dataset train_set = data::make_synthetic_vision(dc);
  data::Dataset val_set = train_set.take_tail(24);

  models::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto model = models::make_simple_cnn(mc, factory,
                                       quant::BitLadder({8, 4, 2}));

  core::CcqConfig config;
  config.probes_per_step = 2;
  config.probe_samples = 24;
  config.max_recovery_epochs = 1;
  config.initial_recovery_epochs = 1;
  config.finetune.batch_size = 16;
  config.max_steps = 2;
  core::CcqController controller(model, train_set, val_set, config);
  controller.init();
  while (!controller.done()) controller.step();

  // One trail entry per committed step, each naming a real layer and a
  // real ladder position.
  const core::RungTrail& trail = controller.trail();
  ASSERT_EQ(trail.size(), 2u);
  for (const core::TrailStep& step : trail) {
    EXPECT_LT(step.layer, model.registry().size());
    EXPECT_LT(step.ladder_pos, model.registry().ladder().size());
  }

  // v2 state round-trip carries the trail.
  const std::string state_path = temp_path("ccq_adaptive_state.bin");
  controller.save_state(state_path);
  core::CcqController resumed(model, train_set, val_set, config);
  ASSERT_TRUE(resumed.load_state(state_path));
  EXPECT_EQ(resumed.trail(), trail);

  // A v1 state (an old build's output: no trail block) still loads —
  // with an empty trail.  Simulated by byte surgery: patch the version
  // field and splice out the trail section it precedes.
  std::string bytes = read_file(state_path);
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 8, &v1, sizeof(v1));  // after the u64 magic
  // Trail block lives after magic(8) + version(4) + layers(8) + step(4)
  // + epoch(4) + planned(4) + baseline(4) + recovery(4) = offset 40:
  // u64 count + count * (u32 layer + u32 pos + f32 acc).
  const std::size_t trail_bytes = 8 + trail.size() * 12;
  bytes.erase(40, trail_bytes);
  write_file(state_path, bytes);
  core::CcqController legacy(model, train_set, val_set, config);
  ASSERT_TRUE(legacy.load_state(state_path));
  EXPECT_TRUE(legacy.trail().empty());
}

}  // namespace
}  // namespace ccq::serve
