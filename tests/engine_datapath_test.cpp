// Differential tests for the fused integer activation datapath.
//
// The contract: a fused forward — activation codes flowing layer to
// layer through requantizing igemm epilogues and integer pooling — is
// bit-identical to `forward_reference`'s naive int64 loops applying the
// same `requant_apply` spec, for every kernel variant, bit width, thread
// count and pooling mix.  Synthetic `from_plans` networks keep the
// sweep deterministic and let individual plan fields (activation bits,
// unquantized producers, off-grid average windows) be pinned exactly.
//
// Labelled `engine` and run on both CI legs next to the igemm
// differential suite.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "ccq/common/alloc.hpp"
#include "ccq/common/exec.hpp"
#include "ccq/common/rng.hpp"
#include "ccq/common/workspace.hpp"
#include "ccq/hw/integer_engine.hpp"

namespace ccq::hw {
namespace {

/// RAII save/restore of $CCQ_IGEMM_KERNEL (kernel sweeps must not leak
/// a forced kernel into the rest of the suite).
struct KernelEnvGuard {
  KernelEnvGuard() {
    const char* cur = std::getenv("CCQ_IGEMM_KERNEL");
    had = cur != nullptr;
    if (had) saved = cur;
  }
  ~KernelEnvGuard() {
    if (had) {
      setenv("CCQ_IGEMM_KERNEL", saved.c_str(), 1);
    } else {
      unsetenv("CCQ_IGEMM_KERNEL");
    }
  }
  bool had = false;
  std::string saved;
};

const ExecContext& ctx_for(std::size_t threads) {
  static const ExecContext one;  // serial
  static const ExecContext two(2);
  static const ExecContext four(4);
  switch (threads) {
    case 2: return two;
    case 4: return four;
    default: return one;
  }
}

/// Random conv plan: `bits`-bit weight codes, optional `act_bits` grid.
/// Scales are small and positive so make_requant always fits the layer.
IntLayerPlan conv_plan(Rng& rng, const std::string& name, std::size_t in_ch,
                       std::size_t out_ch, int bits, int act_bits) {
  IntLayerPlan plan;
  plan.kind = IntLayerPlan::Kind::kConv;
  plan.name = name;
  plan.in_channels = in_ch;
  plan.out_channels = out_ch;
  plan.kernel = 3;
  plan.stride = 1;
  plan.pad = 1;
  plan.weight_bits = bits;
  const std::int32_t max_code = (1 << bits) - 1;  // doubled-code envelope
  plan.weight_codes.resize(out_ch * in_ch * 9);
  for (auto& c : plan.weight_codes) {
    c = static_cast<std::int32_t>(rng.uniform_int(2 * max_code + 1)) -
        max_code;
  }
  plan.channel_scale.resize(out_ch);
  plan.bias.resize(out_ch);
  for (std::size_t c = 0; c < out_ch; ++c) {
    plan.channel_scale[c] = static_cast<float>(rng.uniform(1e-4, 2e-3));
    plan.bias[c] = static_cast<float>(rng.uniform(-0.2, 0.2));
  }
  if (act_bits < 32) {
    plan.has_act = true;
    plan.act_bits = act_bits;
    plan.act_clip = 1.0f;
  }
  return plan;
}

IntLayerPlan linear_plan(Rng& rng, const std::string& name, std::size_t in_f,
                         std::size_t out_f, int bits, int act_bits) {
  IntLayerPlan plan;
  plan.kind = IntLayerPlan::Kind::kLinear;
  plan.name = name;
  plan.in_features = in_f;
  plan.out_features = out_f;
  plan.weight_bits = bits;
  const std::int32_t max_code = (1 << bits) - 1;
  plan.weight_codes.resize(out_f * in_f);
  for (auto& c : plan.weight_codes) {
    c = static_cast<std::int32_t>(rng.uniform_int(2 * max_code + 1)) -
        max_code;
  }
  plan.channel_scale.resize(out_f);
  plan.bias.resize(out_f);
  for (std::size_t c = 0; c < out_f; ++c) {
    plan.channel_scale[c] = static_cast<float>(rng.uniform(1e-4, 2e-3));
    plan.bias[c] = static_cast<float>(rng.uniform(-0.2, 0.2));
  }
  if (act_bits < 32) {
    plan.has_act = true;
    plan.act_bits = act_bits;
    plan.act_clip = 1.0f;
  }
  return plan;
}

IntLayerPlan pool_plan(IntLayerPlan::Kind kind, const std::string& name,
                       std::size_t k = 2, std::size_t s = 2) {
  IntLayerPlan plan;
  plan.kind = kind;
  plan.name = name;
  plan.pool_kernel = k;
  plan.pool_stride = s;
  return plan;
}

/// conv → maxpool → conv → avgpool → gap → linear, everything fused
/// until the unquantized classifier head.
std::vector<IntLayerPlan> mixed_net(Rng& rng, int bits) {
  std::vector<IntLayerPlan> plans;
  plans.push_back(conv_plan(rng, "conv0", 3, 6, bits, bits));
  plans.push_back(pool_plan(IntLayerPlan::Kind::kMaxPool, "maxpool@1"));
  plans.push_back(conv_plan(rng, "conv1", 6, 8, bits, bits));
  plans.push_back(pool_plan(IntLayerPlan::Kind::kAvgPool, "avgpool@3"));
  plans.push_back(pool_plan(IntLayerPlan::Kind::kGlobalAvgPool, "gap@4"));
  plans.push_back(linear_plan(rng, "fc", 8, 4, bits, 32));
  return plans;
}

Tensor random_input(Rng& rng, std::size_t n, std::size_t c, std::size_t hw) {
  Tensor x({n, c, hw, hw});
  for (auto& v : x.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  return x;
}

void expect_bit_identical(const IntegerNetwork& net, const Tensor& x,
                          const ExecContext& ctx, const std::string& where) {
  Workspace ws_fast, ws_ref;
  const Tensor fast = net.forward(x, ws_fast, ctx);
  const Tensor ref = net.forward_reference(x, ws_ref, ctx);
  ASSERT_EQ(fast.shape(), ref.shape()) << where;
  const auto fp = fast.data();
  const auto rp = ref.data();
  for (std::size_t i = 0; i < fp.size(); ++i) {
    ASSERT_EQ(fp[i], rp[i]) << where << " output " << i;
  }
}

// ---- fused vs reference sweep -----------------------------------------------

TEST(EngineDatapathTest, FusedMatchesReferenceAcrossKernelsBitsThreads) {
  KernelEnvGuard guard;
  for (int bits : {2, 3, 4, 6, 8}) {
    Rng rng(1000 + bits);
    const auto plans = mixed_net(rng, bits);
    const Tensor x = random_input(rng, 3, 3, 8);
    for (const char* kernel : {"scalar", "vec16", "vec-packed"}) {
      setenv("CCQ_IGEMM_KERNEL", kernel, 1);
      const IntegerNetwork net = IntegerNetwork::from_plans(plans);
      // The sweep must actually exercise the fused epilogue.
      ASSERT_TRUE(net.plan(0).requant_fused) << "conv0 must fuse";
      ASSERT_TRUE(net.plan(2).requant_fused) << "conv1 must fuse";
      ASSERT_FALSE(net.plan(5).requant_fused) << "fc head has no act grid";
      for (std::size_t threads : {1, 2, 4}) {
        expect_bit_identical(net, x, ctx_for(threads),
                             std::string("bits=") + std::to_string(bits) +
                                 " kernel=" + kernel +
                                 " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(EngineDatapathTest, WideActivationGridsFlowAsInt16Codes) {
  // 12-bit activations: out_qmax = 4095 > 255, so codes travel as i16.
  KernelEnvGuard guard;
  unsetenv("CCQ_IGEMM_KERNEL");
  Rng rng(77);
  std::vector<IntLayerPlan> plans;
  plans.push_back(conv_plan(rng, "conv0", 3, 5, 4, 12));
  plans.push_back(conv_plan(rng, "conv1", 5, 6, 4, 12));
  plans.push_back(pool_plan(IntLayerPlan::Kind::kGlobalAvgPool, "gap@2"));
  plans.push_back(linear_plan(rng, "fc", 6, 3, 4, 32));
  const IntegerNetwork net = IntegerNetwork::from_plans(plans);
  ASSERT_TRUE(net.plan(0).requant_fused);
  ASSERT_EQ(net.plan(0).out_qmax, 4095);
  const Tensor x = random_input(rng, 2, 3, 6);
  for (std::size_t threads : {1, 4}) {
    expect_bit_identical(net, x, ctx_for(threads),
                         "i16 codes threads=" + std::to_string(threads));
  }
}

TEST(EngineDatapathTest, UnquantizedProducerFallsBackAndRecovers) {
  // conv0 has no activation grid → conv1 sees float input (in_bound 0,
  // unfused); conv1's own quantized act re-enters the code domain, so
  // conv2 fuses again.  Both paths must still agree bit for bit.
  KernelEnvGuard guard;
  unsetenv("CCQ_IGEMM_KERNEL");
  Rng rng(42);
  std::vector<IntLayerPlan> plans;
  plans.push_back(conv_plan(rng, "conv0", 3, 4, 4, 32));  // no act
  plans.push_back(conv_plan(rng, "conv1", 4, 5, 4, 4));
  plans.push_back(conv_plan(rng, "conv2", 5, 6, 4, 4));
  plans.push_back(pool_plan(IntLayerPlan::Kind::kGlobalAvgPool, "gap@3"));
  plans.push_back(linear_plan(rng, "fc", 6, 3, 4, 32));
  const IntegerNetwork net = IntegerNetwork::from_plans(plans);
  EXPECT_FALSE(net.plan(0).requant_fused);  // no act grid to fuse into
  EXPECT_FALSE(net.plan(1).requant_fused);  // float input, unknown bound
  EXPECT_TRUE(net.plan(2).requant_fused);   // back on the code grid
  const Tensor x = random_input(rng, 2, 3, 6);
  expect_bit_identical(net, x, ctx_for(2), "fallback/recovery net");
}

// ---- integer pooling --------------------------------------------------------

TEST(EngineDatapathTest, AvgPoolRequantizesOffGridWindowsHalfUp) {
  // A 1×1 identity conv (weight code 2 ≈ weight 1 doubled, ratio ½·2)
  // maps input codes straight to activation codes, so the avgpool
  // windows below are exact integer means over known codes:
  //   window {0,1,1,3} → 5/4 = 1.25 → 1
  //   window {1,1,2,3} → 7/4 = 1.75 → 2
  //   window {1,2,0,3} → 6/4 = 1.5  → 2   (ties round half-up)
  //   window {2,2,4,4} → 12/4 = 3   → 3   (on-grid stays exact)
  IntLayerPlan conv;
  conv.kind = IntLayerPlan::Kind::kConv;
  conv.name = "identity";
  conv.in_channels = 1;
  conv.out_channels = 1;
  conv.kernel = 1;
  conv.stride = 1;
  conv.pad = 0;
  conv.weight_bits = 2;
  conv.weight_codes = {2};
  // acc = 2·code_in; requant ratio (channel_scale / out_scale) = ½ maps
  // it back to code_in: out_scale = 1/255 (act_clip 1 on 8 bits), so
  // channel_scale = ½·(1/255).
  conv.channel_scale = {0.5f / 255.0f};
  conv.bias = {0.0f};
  conv.has_act = true;
  conv.act_bits = 8;
  conv.act_clip = 1.0f;
  std::vector<IntLayerPlan> plans;
  plans.push_back(conv);
  plans.push_back(pool_plan(IntLayerPlan::Kind::kAvgPool, "avgpool@1"));
  const IntegerNetwork net = IntegerNetwork::from_plans(plans);
  ASSERT_TRUE(net.plan(0).requant_fused);

  const std::vector<std::int32_t> codes{0, 1, 1, 2,   // rows of a 4×4 image
                                        1, 3, 1, 3,   // (2×2 windows col-
                                        1, 2, 2, 2,   // umn-major in the
                                        0, 3, 4, 4};  // comment above)
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < codes.size(); ++i) {
    x.data()[i] = static_cast<float>(codes[i]) / 255.0f;
  }
  const Tensor out = net.forward(x);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  const std::vector<std::int32_t> want{1, 2, 2, 3};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i],
                    static_cast<float>(want[i]) / 255.0f)
        << "window " << i;
  }
  // And the reference path agrees bit for bit.
  expect_bit_identical(net, x, ctx_for(1), "avgpool off-grid");
}

// ---- allocation discipline --------------------------------------------------

TEST(EngineDatapathTest, WarmForwardMakesNoHeapAllocations) {
  if (!alloc_stats::enabled()) GTEST_SKIP() << "CCQ_COUNT_ALLOCS is off";
  KernelEnvGuard guard;
  unsetenv("CCQ_IGEMM_KERNEL");
  Rng rng(5);
  const IntegerNetwork net = IntegerNetwork::from_plans(mixed_net(rng, 4));
  const Tensor x = random_input(rng, 2, 3, 8);
  Workspace ws;
  const ExecContext& ctx = ctx_for(1);
  Tensor warmup = net.forward(x, ws, ctx);  // cold: populates the pools
  ws.recycle(std::move(warmup));  // output storage back to the pool too
  alloc_stats::reset();
  Tensor out = net.forward(x, ws, ctx);  // warm: pool hits only
  EXPECT_EQ(alloc_stats::count(), 0u)
      << alloc_stats::bytes() << " bytes allocated on a warm forward";
  EXPECT_GT(out.numel(), 0u);
  ws.recycle(std::move(out));
}

}  // namespace
}  // namespace ccq::hw
