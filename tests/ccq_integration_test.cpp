// Integration tests: the full CCQ controller (Algorithm 1) and the
// baselines, end to end on small models and data.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "ccq/core/baselines.hpp"
#include "ccq/core/ccq.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/simple.hpp"

namespace ccq::core {
namespace {

struct Fixture {
  data::Dataset train_set;
  data::Dataset val_set;
  models::QuantModel model;
};

Fixture make_fixture(quant::Policy policy = quant::Policy::kPact,
                     std::vector<int> ladder = {8, 4, 2}) {
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.samples_per_class = 40;
  dc.height = dc.width = 8;
  dc.seed = 5;
  data::Dataset train_set = data::make_synthetic_vision(dc);
  data::Dataset val_set = train_set.take_tail(48);

  models::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = policy};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder(ladder));

  // Light pretraining so CCQ starts from a sensible network.
  TrainConfig pre;
  pre.epochs = 6;
  pre.batch_size = 16;
  pre.sgd = {.lr = 0.05, .momentum = 0.9, .weight_decay = 1e-4};
  train(model, train_set, val_set, pre);
  return Fixture{std::move(train_set), std::move(val_set), std::move(model)};
}

CcqConfig fast_config() {
  CcqConfig config;
  config.probes_per_step = 4;
  config.probe_samples = 48;
  config.max_recovery_epochs = 2;
  config.initial_recovery_epochs = 1;
  config.finetune.batch_size = 16;
  config.finetune.sgd = {.lr = 0.02, .momentum = 0.9, .weight_decay = 1e-4};
  config.hybrid_lr.base_lr = 0.02;
  return config;
}

TEST(CcqTest, RunsToLadderFloor) {
  Fixture f = make_fixture();
  const CcqResult r = run_ccq(f.model, f.train_set, f.val_set, fast_config());
  // 5 layers × 2 ladder transitions = 10 steps.
  EXPECT_EQ(r.steps.size(), 10u);
  for (int bits : r.final_bits) EXPECT_EQ(bits, 2);
  EXPECT_NEAR(r.final_compression, 16.0, 1e-6);
  EXPECT_TRUE(f.model.registry().all_sleeping());
}

TEST(CcqTest, AccuracyStaysNearBaseline) {
  Fixture f = make_fixture();
  const CcqResult r = run_ccq(f.model, f.train_set, f.val_set, fast_config());
  EXPECT_GT(r.baseline_accuracy, 0.6f);
  // Gradual quantization with recovery must not collapse the network.
  EXPECT_GT(r.final_accuracy, r.baseline_accuracy - 0.25f);
}

TEST(CcqTest, CurveRecordsQuantizationEvents) {
  Fixture f = make_fixture();
  const CcqResult r = run_ccq(f.model, f.train_set, f.val_set, fast_config());
  int events = 0;
  for (const auto& stat : r.curve) {
    if (!stat.event.empty()) ++events;
  }
  // One initial-quantization marker + one per step.
  EXPECT_EQ(events, 1 + static_cast<int>(r.steps.size()));
}

TEST(CcqTest, StepRecordsAreInternallyConsistent) {
  Fixture f = make_fixture();
  const CcqResult r = run_ccq(f.model, f.train_set, f.val_set, fast_config());
  double prev_compression = 0.0;
  for (const auto& step : r.steps) {
    EXPECT_LT(step.layer, f.model.registry().size());
    EXPECT_TRUE(step.new_bits == 4 || step.new_bits == 2);
    EXPECT_GE(step.recovery_epochs, 1);
    EXPECT_LE(step.recovery_epochs, 2);
    EXPECT_GT(step.compression, prev_compression);
    prev_compression = step.compression;
    // Pick distribution is a simplex over layers.
    double total = 0.0;
    for (double p : step.pick_probabilities) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(CcqTest, MaxStepsBoundsTheRun) {
  Fixture f = make_fixture();
  CcqConfig config = fast_config();
  config.max_steps = 3;
  const CcqResult r = run_ccq(f.model, f.train_set, f.val_set, config);
  EXPECT_EQ(r.steps.size(), 3u);
  EXPECT_FALSE(f.model.registry().all_sleeping());
}

TEST(CcqTest, FrozenLayersAreNeverPicked) {
  Fixture f = make_fixture();
  f.model.registry().force_bits(0, 32);  // freeze first layer at fp32
  const CcqResult r = run_ccq(f.model, f.train_set, f.val_set, fast_config());
  for (const auto& step : r.steps) {
    EXPECT_NE(step.layer, 0u);
  }
  EXPECT_EQ(r.final_bits[0], 32);
  EXPECT_EQ(r.steps.size(), 8u);  // 4 remaining layers × 2 transitions
}

TEST(CcqTest, ManualRecoveryUsesFixedEpochs) {
  Fixture f = make_fixture();
  CcqConfig config = fast_config();
  config.recovery = RecoveryMode::kManual;
  config.manual_recovery_epochs = 1;
  const CcqResult r = run_ccq(f.model, f.train_set, f.val_set, config);
  for (const auto& step : r.steps) {
    EXPECT_EQ(step.recovery_epochs, 1);
  }
}

TEST(CcqTest, MemoryAwareOffStillConverges) {
  Fixture f = make_fixture();
  CcqConfig config = fast_config();
  config.memory_aware = false;
  const CcqResult r = run_ccq(f.model, f.train_set, f.val_set, config);
  EXPECT_EQ(r.steps.size(), 10u);
  for (const auto& step : r.steps) {
    EXPECT_DOUBLE_EQ(step.lambda, 0.0);
  }
}

TEST(CcqTest, MemoryAwarePrefersBigLayersEarly) {
  // With λ≈1 at the start, the first pick should be one of the biggest
  // layers (conv3 or conv2 carry most of the weights in SimpleCNN).
  Fixture f = make_fixture();
  CcqConfig config = fast_config();
  config.lambda_start = 1.0;
  config.lambda_end = 1.0;
  config.max_steps = 1;
  config.seed = 9;
  const CcqResult r = run_ccq(f.model, f.train_set, f.val_set, config);
  ASSERT_EQ(r.steps.size(), 1u);
  const auto& reg = f.model.registry();
  // The picked layer's weight share must be above average.
  const double share =
      static_cast<double>(reg.unit(r.steps[0].layer).weight_count) /
      static_cast<double>(reg.total_weights());
  EXPECT_GT(share, 1.0 / static_cast<double>(reg.size()));
}

TEST(CcqTest, LambdaDecaysLinearlyAcrossSteps) {
  Fixture f = make_fixture();
  CcqConfig config = fast_config();
  config.lambda_start = 0.8;
  config.lambda_end = 0.0;
  const CcqResult r = run_ccq(f.model, f.train_set, f.val_set, config);
  ASSERT_GE(r.steps.size(), 2u);
  EXPECT_NEAR(r.steps.front().lambda, 0.8, 1e-9);
  EXPECT_NEAR(r.steps.back().lambda, 0.0, 1e-9);
  for (std::size_t i = 1; i < r.steps.size(); ++i) {
    EXPECT_LE(r.steps[i].lambda, r.steps[i - 1].lambda + 1e-12);
  }
}

TEST(CcqTest, WorksWithEveryPolicy) {
  for (quant::Policy policy :
       {quant::Policy::kDoReFa, quant::Policy::kWrpn, quant::Policy::kLsq}) {
    Fixture f = make_fixture(policy, {8, 2});
    CcqConfig config = fast_config();
    const CcqResult r =
        run_ccq(f.model, f.train_set, f.val_set, config);
    EXPECT_EQ(r.steps.size(), 5u) << quant::policy_str(policy);
    EXPECT_GT(r.final_accuracy, 0.3f) << quant::policy_str(policy);
  }
}

TEST(CcqTest, SingleLayerModelDegeneratesGracefully) {
  data::SyntheticConfig dc;
  dc.num_classes = 3;
  dc.samples_per_class = 20;
  dc.height = dc.width = 6;
  data::Dataset train_set = data::make_synthetic_vision(dc);
  data::Dataset val_set = train_set.take_tail(15);

  // An MLP with zero hidden layers is not available; use the 3-unit MLP
  // with a two-level ladder to exercise the shortest possible run.
  models::ModelConfig mc;
  mc.num_classes = 3;
  mc.image_size = 6;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  auto model = models::make_mlp(mc, factory, quant::BitLadder({4, 2}), 8);
  CcqConfig config = fast_config();
  config.probe_samples = 15;
  const CcqResult r = run_ccq(model, train_set, val_set, config);
  EXPECT_EQ(r.steps.size(), 3u);
}

// ---- baselines -------------------------------------------------------------

TEST(BaselinesTest, OneShotReachesRequestedCompression) {
  Fixture f = make_fixture();
  TrainConfig ft;
  ft.epochs = 2;
  ft.batch_size = 16;
  ft.sgd = {.lr = 0.02, .momentum = 0.9, .weight_decay = 1e-4};
  const OneShotResult r =
      one_shot_quantize(f.model, f.train_set, f.val_set, ft, 2);
  EXPECT_NEAR(r.compression, 16.0, 1e-6);
  EXPECT_GT(r.accuracy, 0.3f);
}

TEST(BaselinesTest, FisherSensitivityIsFiniteAndNonNegative) {
  Fixture f = make_fixture();
  const auto s = fisher_sensitivity(f.model, f.train_set, 64);
  ASSERT_EQ(s.size(), f.model.registry().size());
  for (double v : s) {
    EXPECT_GE(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
  }
  // At least one layer must register real sensitivity.
  EXPECT_GT(*std::max_element(s.begin(), s.end()), 0.0);
}

TEST(BaselinesTest, HawqProxyAssignsMixedPrecision) {
  Fixture f = make_fixture();
  TrainConfig ft;
  ft.epochs = 2;
  ft.batch_size = 16;
  ft.sgd = {.lr = 0.02, .momentum = 0.9, .weight_decay = 1e-4};
  const OneShotResult r =
      hawq_proxy_quantize(f.model, f.train_set, f.val_set, ft);
  // Mixed precision: more than one distinct bit width in use.
  std::set<int> bits;
  for (std::size_t i = 0; i < f.model.registry().size(); ++i) {
    bits.insert(f.model.registry().bits_of(i));
  }
  EXPECT_GT(bits.size(), 1u);
  EXPECT_GT(r.compression, 1.0);
}

}  // namespace
}  // namespace ccq::core
