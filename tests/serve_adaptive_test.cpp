// Adaptive-precision serving tests: the load-driven operating-point
// controller (hysteresis, dwell, latency trigger, pinning), the server
// datapath it steers (rung switches atomic between batches, per-request
// overrides, bit-identity of every reply to `forward_reference` at the
// rung that served it), the tagged wire-protocol extension, and the
// harness's scripted load ramp.
//
// Labelled `adaptive` and run on both CI legs plus the TSan quick tier.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "ccq/common/telemetry.hpp"
#include "ccq/core/trail.hpp"
#include "ccq/models/simple.hpp"
#include "ccq/serve/adaptive.hpp"
#include "ccq/serve/artifact.hpp"
#include "ccq/serve/harness.hpp"
#include "ccq/serve/net.hpp"

namespace ccq::serve {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

Tensor make_inputs(std::size_t n) {
  Tensor x({n, 3, 8, 8});
  auto data = x.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>((i * 2654435761u >> 8) & 255u) / 255.0f;
  }
  return x;
}

/// The mixed 8/4/2 quantized CNN from serve_test.cpp, plus the trail
/// that would have produced its allocation — the inputs to
/// `build_multipoint`.
models::QuantModel make_mixed_model() {
  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4, 2}));
  quant::LayerRegistry& registry = model.registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    registry.set_ladder_pos(i, i % 3);
  }
  Workspace ws;
  model.set_training(true);
  model.forward(make_inputs(16), ws);
  model.set_training(false);
  return model;
}

core::RungTrail trail_for(const models::QuantModel& model) {
  const quant::LayerRegistry& registry = model.registry();
  core::RungTrail trail;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    if (registry.unit(i).ladder_pos == 0) continue;
    core::TrailStep step;
    step.layer = i;
    step.ladder_pos = registry.unit(i).ladder_pos;
    step.val_acc = 0.9f;
    trail.push_back(step);
  }
  return trail;
}

/// A 3-rung network (loose budget keeps the full candidate span).
hw::IntegerNetwork make_multipoint() {
  auto model = make_mixed_model();
  MultiPointOptions options;
  options.size_budget = 4.0;
  return build_multipoint(model, trail_for(model), options);
}

float max_row_diff(const Tensor& row, const Tensor& batch, std::size_t i) {
  float diff = 0.0f;
  for (std::size_t c = 0; c < row.dim(0); ++c) {
    diff = std::max(diff, std::abs(row(c) - batch(i, c)));
  }
  return diff;
}

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

/// Enable telemetry for one test, restoring the previous setting.
struct MetricsGuard {
  MetricsGuard() : was(telemetry::metrics_enabled()) {
    telemetry::set_metrics_enabled(true);
  }
  ~MetricsGuard() { telemetry::set_metrics_enabled(was); }
  bool was;
};

// ---- the controller, in isolation ------------------------------------------

TEST(OperatingPointControllerTest, SingleRungIsInert) {
  OperatingPointController inert;
  EXPECT_EQ(inert.decide(1000, 0), 0u);

  OperatingPointController one({}, 1, -1, -1, -1);
  EXPECT_EQ(one.decide(1000, 0), 0u);
  EXPECT_EQ(one.decide(0, 0), 0u);
}

TEST(OperatingPointControllerTest, HysteresisStepsOneRungPerDecision) {
  OperatingPointPolicy policy;
  policy.degrade_depth = 8;
  policy.restore_depth = 2;
  OperatingPointController c(policy, 3, -1, -1, -1);

  EXPECT_EQ(c.decide(8, 0), 1u);   // at the degrade threshold
  EXPECT_EQ(c.decide(20, 0), 2u);  // one step per call, however deep
  EXPECT_EQ(c.decide(50, 0), 2u);  // clamped at the cheapest rung
  EXPECT_EQ(c.decide(5, 0), 2u);   // inside the hysteresis band: hold
  EXPECT_EQ(c.decide(2, 0), 1u);   // at the restore threshold
  EXPECT_EQ(c.decide(0, 0), 0u);
  EXPECT_EQ(c.decide(0, 0), 0u);   // already at full quality
  EXPECT_EQ(c.current(), 0u);
}

TEST(OperatingPointControllerTest, DwellHoldsBetweenSwitches) {
  OperatingPointPolicy policy;
  policy.degrade_depth = 8;
  policy.restore_depth = 2;
  policy.min_dwell_us = 1000;  // 1 ms
  OperatingPointController c(policy, 3, -1, -1, -1);

  EXPECT_EQ(c.decide(8, 1000), 1u);          // first switch: no dwell yet
  EXPECT_EQ(c.decide(8, 1000 + 999'999), 1u);    // inside the dwell window
  EXPECT_EQ(c.decide(8, 1000 + 1'000'000), 2u);  // window over
}

TEST(OperatingPointControllerTest, FixedRungPinsTheModel) {
  OperatingPointPolicy policy;
  policy.fixed_rung = 2;
  OperatingPointController c(policy, 3, -1, -1, -1);
  EXPECT_EQ(c.current(), 2u);
  EXPECT_EQ(c.decide(0, 0), 2u);
  EXPECT_EQ(c.decide(1000, 0), 2u);
}

TEST(OperatingPointControllerTest, InvalidPoliciesRejected) {
  OperatingPointPolicy inverted;
  inverted.degrade_depth = 2;
  inverted.restore_depth = 8;
  EXPECT_NE(error_message([&] {
              OperatingPointController c(inverted, 3, -1, -1, -1);
            }).find("hysteresis"),
            std::string::npos);
  // Single-rung models skip the check: a v2 artifact loads under any
  // policy.
  EXPECT_EQ(OperatingPointController(inverted, 1, -1, -1, -1).decide(0, 0),
            0u);

  OperatingPointPolicy pinned;
  pinned.fixed_rung = 3;
  const std::string message = error_message(
      [&] { OperatingPointController c(pinned, 3, -1, -1, -1); });
  EXPECT_NE(message.find("fixed_rung 3"), std::string::npos) << message;
  EXPECT_NE(message.find("3 rung(s)"), std::string::npos) << message;
}

TEST(OperatingPointControllerTest, LatencyTriggerUsesTheDeltaWindow) {
  MetricsGuard metrics;
  const int timer = telemetry::named_metric(telemetry::NamedKind::kTimer,
                                            "test.adaptive.latency");
  ASSERT_GE(timer, 0);

  OperatingPointPolicy policy;
  policy.degrade_depth = 1000;  // depth never triggers in this test
  policy.restore_depth = 2;
  policy.degrade_p99_us = 100;
  OperatingPointController c(policy, 3, timer, -1, -1);

  // Quiet decision to snapshot whatever the series already holds.
  EXPECT_EQ(c.decide(10, 0), 0u);

  // A burst of 1 ms requests: p99 over the new window is 10× the
  // threshold, so the next decision degrades even at depth 0.
  for (int i = 0; i < 10; ++i) {
    telemetry::record_named_duration(timer, 1'000'000);
  }
  EXPECT_EQ(c.decide(0, 0), 1u);

  // No new samples since that decision: the spike is out of the window,
  // and the quiet queue restores — a historical spike cannot pin the
  // model degraded.
  EXPECT_EQ(c.decide(0, 0), 0u);
}

// ---- the server datapath ---------------------------------------------------

TEST(AdaptiveServeTest, DegradesUnderQueuePressureAndRestores) {
  MetricsGuard metrics;
  const std::string artifact = temp_path("ccq_serve_adaptive_pressure.ccqa");
  export_artifact(make_multipoint(), artifact);
  const hw::IntegerNetwork reference = load_artifact(artifact);
  const Tensor x = make_inputs(17);
  Workspace ref_ws;
  std::vector<Tensor> per_rung;
  for (std::size_t r = 0; r < reference.rung_count(); ++r) {
    per_rung.push_back(reference.forward_reference(x, ref_ws, ExecContext(), r));
  }

  // One worker, a 16-deep flush threshold and a long delay make the
  // schedule deterministic: 17 quick submissions queue up, the first
  // flush fires at depth ≥ 16 (= degrade_depth, so the controller steps
  // to rung 1 and the whole batch runs there), and the leftover request
  // flushes on the delay timer at depth 1 ≤ restore_depth — restoring
  // rung 0.
  ServeConfig sc;
  sc.workers = 1;
  InferenceServer server(sc);
  ModelConfig mc;
  mc.max_batch = 16;
  mc.max_delay_us = 100'000;
  mc.queue_capacity = 64;
  mc.adaptive.degrade_depth = 16;
  mc.adaptive.restore_depth = 2;
  ModelHandle handle = server.load("adaptive-pressure", artifact, mc);

  const std::size_t n = x.dim(0);
  std::vector<Tensor> samples;
  std::vector<Tensor> outputs(n);
  std::vector<std::int32_t> rungs(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    Tensor sample({x.dim(1), x.dim(2), x.dim(3)});
    const std::size_t numel = sample.numel();
    const auto src = x.data().subspan(i * numel, numel);
    std::copy(src.begin(), src.end(), sample.data().begin());
    samples.push_back(std::move(sample));
  }
  std::vector<std::future<void>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    SubmitOptions options;
    options.served_rung = &rungs[i];
    futures.push_back(server.submit(handle, samples[i], outputs[i], options));
  }
  for (auto& f : futures) f.get();

  std::size_t at_one = 0, at_zero = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_GE(rungs[i], 0) << "sample " << i;
    ASSERT_LT(rungs[i], 3) << "sample " << i;
    at_one += rungs[i] == 1;
    at_zero += rungs[i] == 0;
    // Every reply is bit-identical to the reference at the rung that
    // served it — whatever the controller chose.
    EXPECT_EQ(max_row_diff(outputs[i],
                           per_rung[static_cast<std::size_t>(rungs[i])], i),
              0.0f)
        << "sample " << i << " rung " << rungs[i];
  }
  EXPECT_EQ(at_one, 16u);  // the pressure batch, degraded
  EXPECT_EQ(at_zero, 1u);  // the straggler, restored

  // The observables: gauge back at 0, two switches recorded.
  const int gauge = telemetry::find_named_metric(
      telemetry::NamedKind::kGauge, "serve.adaptive-pressure.rung");
  const int switches = telemetry::find_named_metric(
      telemetry::NamedKind::kCounter, "serve.adaptive-pressure.rung_switches");
  ASSERT_GE(gauge, 0);
  ASSERT_GE(switches, 0);
  EXPECT_EQ(telemetry::named_gauge_value(gauge), 0.0);
  EXPECT_EQ(telemetry::named_counter_value(switches), 2u);

  server.shutdown();
}

TEST(AdaptiveServeTest, ExplicitOverridesServeExactlyThatRung) {
  const std::string artifact = temp_path("ccq_serve_adaptive_override.ccqa");
  export_artifact(make_multipoint(), artifact);
  const hw::IntegerNetwork reference = load_artifact(artifact);
  const Tensor x = make_inputs(24);
  Workspace ref_ws;
  std::vector<Tensor> per_rung;
  for (std::size_t r = 0; r < reference.rung_count(); ++r) {
    per_rung.push_back(reference.forward_reference(x, ref_ws, ExecContext(), r));
  }

  ServeConfig sc;
  sc.workers = 2;
  InferenceServer server(sc);
  ModelConfig mc;
  mc.max_batch = 8;
  mc.max_delay_us = 200;
  ModelHandle handle = server.load("adaptive-override", artifact, mc);

  // Interleaved overrides 0/1/2: batches must never mix rungs, which the
  // bit-identity of every reply to its *own* rung's reference makes
  // observable.
  const std::size_t n = x.dim(0);
  std::vector<Tensor> samples;
  std::vector<Tensor> outputs(n);
  std::vector<std::int32_t> rungs(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    Tensor sample({x.dim(1), x.dim(2), x.dim(3)});
    const std::size_t numel = sample.numel();
    const auto src = x.data().subspan(i * numel, numel);
    std::copy(src.begin(), src.end(), sample.data().begin());
    samples.push_back(std::move(sample));
  }
  std::vector<std::future<void>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    SubmitOptions options;
    options.rung = static_cast<std::int32_t>(i % 3);
    options.served_rung = &rungs[i];
    futures.push_back(server.submit(handle, samples[i], outputs[i], options));
  }
  for (auto& f : futures) f.get();

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(rungs[i], static_cast<std::int32_t>(i % 3)) << "sample " << i;
    EXPECT_EQ(max_row_diff(outputs[i], per_rung[i % 3], i), 0.0f)
        << "sample " << i;
  }
  server.shutdown();
}

TEST(AdaptiveServeTest, OutOfRangeOverrideRejectedAtAdmission) {
  const std::string artifact = temp_path("ccq_serve_adaptive_range.ccqa");
  export_artifact(make_multipoint(), artifact);
  InferenceServer server;
  ModelHandle handle = server.load("adaptive-range", artifact, {});

  const Tensor sample({3, 8, 8});
  Tensor out;
  SubmitOptions options;
  options.rung = 5;
  const std::string message = error_message(
      [&] { server.submit(handle, sample, out, options); });
  EXPECT_NE(message.find("operating-point override 5"), std::string::npos)
      << message;
  EXPECT_NE(message.find("3 rung(s)"), std::string::npos) << message;

  // A single-point (v2) model rejects any non-default override.
  auto model = make_mixed_model();
  const std::string single = temp_path("ccq_serve_adaptive_single.ccqa");
  export_artifact(model, single);
  ModelHandle flat = server.load("adaptive-flat", single, {});
  options.rung = 1;
  EXPECT_NE(error_message([&] {
              server.submit(flat, sample, out, options);
            }).find("1 rung(s)"),
            std::string::npos);
  server.shutdown();
}

// ---- the wire protocol extension -------------------------------------------

TEST(AdaptiveWireTest, PointTagRoundTripsAndUnknownTagsRejected) {
  wire::InferRequest request;
  request.model = "m";
  request.channels = request.height = request.width = 1;
  request.data = {0.5f};
  request.has_point = true;
  request.point = 2;
  const std::string tagged = wire::encode_request(request);
  const wire::InferRequest back = wire::decode_request(tagged);
  EXPECT_TRUE(back.has_point);
  EXPECT_EQ(back.point, 2);

  // Untagged encoding is byte-identical to the previous revision: the
  // tag adds bytes only when present.
  request.has_point = false;
  const std::string untagged = wire::encode_request(request);
  EXPECT_LT(untagged.size(), tagged.size());
  EXPECT_FALSE(wire::decode_request(untagged).has_point);

  // Unknown and duplicate trailing tags are rejected, not ignored.
  EXPECT_THROW(wire::decode_request(untagged + std::string(1, '\x07')),
               wire::ProtocolError);
  const std::string doubled =
      tagged + tagged.substr(untagged.size());  // the tag bytes, twice
  EXPECT_THROW(wire::decode_request(doubled), wire::ProtocolError);

  wire::InferReply reply;
  reply.ok = true;
  reply.version = 1;
  reply.logits = {1.0f};
  reply.has_rung = true;
  reply.rung = 2;
  const wire::InferReply reply_back =
      wire::decode_reply(wire::encode_reply(reply));
  EXPECT_TRUE(reply_back.has_rung);
  EXPECT_EQ(reply_back.rung, 2u);
  reply.has_rung = false;
  EXPECT_FALSE(wire::decode_reply(wire::encode_reply(reply)).has_rung);
}

TEST(AdaptiveWireTest, TcpPointOverrideServesThatRung) {
  const std::string artifact = temp_path("ccq_serve_adaptive_tcp.ccqa");
  export_artifact(make_multipoint(), artifact);
  const hw::IntegerNetwork reference = load_artifact(artifact);
  const Tensor x = make_inputs(4);
  Workspace ref_ws;
  std::vector<Tensor> per_rung;
  for (std::size_t r = 0; r < reference.rung_count(); ++r) {
    per_rung.push_back(reference.forward_reference(x, ref_ws, ExecContext(), r));
  }

  InferenceServer server;
  ModelConfig mc;
  mc.max_batch = 1;
  server.load("tcp-adaptive", artifact, mc);
  TcpServer front(server, 0);
  TcpClient client("127.0.0.1", front.port());

  const std::size_t numel = x.dim(1) * x.dim(2) * x.dim(3);
  auto request_for = [&](std::size_t i) {
    wire::InferRequest request;
    request.model = "tcp-adaptive";
    request.channels = x.dim(1);
    request.height = x.dim(2);
    request.width = x.dim(3);
    const auto src = x.data().subspan(i * numel, numel);
    request.data.assign(src.begin(), src.end());
    return request;
  };

  // Tagged request with an explicit rung: the reply echoes it and the
  // logits match that rung exactly.
  for (std::int32_t rung = 0; rung < 3; ++rung) {
    wire::InferRequest request = request_for(static_cast<std::size_t>(rung));
    request.has_point = true;
    request.point = rung;
    const wire::InferReply reply = client.infer(request);
    ASSERT_TRUE(reply.ok) << reply.error;
    ASSERT_TRUE(reply.has_rung);
    EXPECT_EQ(reply.rung, static_cast<std::uint32_t>(rung));
    const Tensor& expected = per_rung[static_cast<std::size_t>(rung)];
    ASSERT_EQ(reply.logits.size(), expected.dim(1));
    for (std::size_t k = 0; k < reply.logits.size(); ++k) {
      EXPECT_EQ(reply.logits[k], expected(static_cast<std::size_t>(rung), k));
    }
  }

  // A tagged request with point −1 delegates to the controller but still
  // learns which rung served it.
  wire::InferRequest delegated = request_for(3);
  delegated.has_point = true;
  delegated.point = -1;
  const wire::InferReply reply = client.infer(delegated);
  ASSERT_TRUE(reply.ok) << reply.error;
  ASSERT_TRUE(reply.has_rung);
  EXPECT_LT(reply.rung, 3u);

  // An untagged (old-client) request is served without a rung echo.
  const wire::InferReply legacy = client.infer(request_for(3));
  ASSERT_TRUE(legacy.ok) << legacy.error;
  EXPECT_FALSE(legacy.has_rung);

  // An out-of-range point comes back as an error reply naming the rung
  // count, and the connection survives.
  wire::InferRequest bad = request_for(0);
  bad.has_point = true;
  bad.point = 7;
  const wire::InferReply rejected = client.infer(bad);
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.error.find("3 rung(s)"), std::string::npos)
      << rejected.error;
  EXPECT_TRUE(client.infer(request_for(0)).ok);
}

// ---- the scripted load ramp ------------------------------------------------

TEST(AdaptiveHarnessTest, RampScheduleIsValidated) {
  hw::IntegerNetwork net = make_multipoint();
  InferenceServer server;
  server.load("ramp-check", std::move(net), {});
  ServeHarness harness(server, "ramp-check");
  const Tensor x = make_inputs(8);

  HarnessOptions options;
  options.ramp = {{1000.0, 4}, {1000.0, 2}};  // sums to 6, batch holds 8
  EXPECT_NE(error_message([&] { harness.run(x, options); })
                .find("ramp stages offer 6"),
            std::string::npos);

  options.ramp = {{0.0, 8}};
  EXPECT_NE(error_message([&] { harness.run(x, options); })
                .find("positive rps"),
            std::string::npos);
  server.shutdown();
}

TEST(AdaptiveHarnessTest, RampRunReportsServingRungs) {
  const std::string artifact = temp_path("ccq_serve_adaptive_ramp.ccqa");
  export_artifact(make_multipoint(), artifact);
  const hw::IntegerNetwork reference = load_artifact(artifact);
  const Tensor x = make_inputs(30);
  Workspace ref_ws;
  std::vector<Tensor> per_rung;
  for (std::size_t r = 0; r < reference.rung_count(); ++r) {
    per_rung.push_back(reference.forward_reference(x, ref_ws, ExecContext(), r));
  }

  InferenceServer server;
  ModelConfig mc;
  mc.max_batch = 4;
  mc.max_delay_us = 500;
  mc.queue_capacity = 64;
  server.load("ramp", artifact, mc);
  ServeHarness harness(server, "ramp");

  // Up-then-down offered load.  The asserted contract is structural —
  // every served sample reports a rung and matches it bit-exactly; how
  // far the controller degrades depends on machine speed.
  HarnessOptions options;
  options.producers = 2;
  options.ramp = {{2000.0, 10}, {20000.0, 10}, {2000.0, 10}};
  const HarnessReport report = harness.run(x, options);

  EXPECT_EQ(report.requests + report.rejected, x.dim(0));
  ASSERT_EQ(report.rungs.size(), x.dim(0));
  std::size_t served = 0;
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    if (report.outputs[i].numel() == 0) {
      EXPECT_EQ(report.rungs[i], -1) << "shed sample " << i;
      continue;
    }
    ++served;
    ASSERT_GE(report.rungs[i], 0) << "sample " << i;
    ASSERT_LT(report.rungs[i], 3) << "sample " << i;
    EXPECT_EQ(
        max_row_diff(report.outputs[i],
                     per_rung[static_cast<std::size_t>(report.rungs[i])], i),
        0.0f)
        << "sample " << i << " rung " << report.rungs[i];
  }
  EXPECT_EQ(served, report.requests);
  server.shutdown();
}

}  // namespace
}  // namespace ccq::serve
