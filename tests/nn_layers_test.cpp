// Layer-level tests: forward references and numerical gradient checks
// for every module in ccq::nn.
#include <gtest/gtest.h>

#include "ccq/nn/activation.hpp"
#include "ccq/nn/container.hpp"
#include "ccq/nn/conv.hpp"
#include "ccq/nn/gradcheck.hpp"
#include "ccq/nn/linear.hpp"
#include "ccq/nn/norm.hpp"
#include "ccq/nn/pool.hpp"

namespace ccq::nn {
namespace {

/// Scalar loss used by gradient checks: ½‖f(x)‖² with fixed per-element
/// coefficients so every output contributes a distinct gradient.
float weighted_sqloss(const Tensor& y) {
  double acc = 0.0;
  auto d = y.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double w = 0.1 + 0.01 * static_cast<double>(i % 17);
    acc += 0.5 * w * d[i] * d[i];
  }
  return static_cast<float>(acc);
}

Tensor weighted_sqloss_grad(const Tensor& y) {
  Tensor g(y.shape());
  auto d = y.data();
  auto gd = g.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    const float w = 0.1f + 0.01f * static_cast<float>(i % 17);
    gd[i] = w * d[i];
  }
  return g;
}

/// Run forward+backward, then gradient-check the module's parameters and
/// its input gradient against central differences.
void check_module_grads(Module& module, Tensor x, float tol = 2e-2f,
                        double eps = 1e-3) {
  Workspace ws;
  module.set_training(true);
  auto loss_fn = [&]() {
    return static_cast<double>(weighted_sqloss(module.forward(x, ws)));
  };
  const Tensor y = module.forward(x, ws);
  for (auto* p : module.parameters()) p->zero_grad();
  const Tensor gx = module.backward(weighted_sqloss_grad(y), ws);

  for (auto* p : module.parameters()) {
    const auto r = check_parameter_grad(*p, loss_fn, eps);
    EXPECT_GT(r.checked, 0u);
    EXPECT_LT(r.max_rel_err, tol) << "parameter " << p->name;
  }
  const auto ri = check_input_grad(x, gx, loss_fn, eps);
  EXPECT_LT(ri.max_rel_err, tol) << "input gradient";
}

// ---- Conv2d ----------------------------------------------------------------

/// Direct convolution reference.
Tensor naive_conv(const Tensor& x, const Tensor& w, std::size_t stride,
                  std::size_t pad) {
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), wdt = x.dim(3);
  const std::size_t oc = w.dim(0), k = w.dim(2);
  const std::size_t oh = (h + 2 * pad - k) / stride + 1;
  const std::size_t ow = (wdt + 2 * pad - k) / stride + 1;
  Tensor y({n, oc, oh, ow});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t o = 0; o < oc; ++o)
      for (std::size_t oy = 0; oy < oh; ++oy)
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (std::size_t ic = 0; ic < c; ++ic)
            for (std::size_t ky = 0; ky < k; ++ky)
              for (std::size_t kx = 0; kx < k; ++kx) {
                const long iy = static_cast<long>(oy * stride + ky) -
                                static_cast<long>(pad);
                const long ix = static_cast<long>(ox * stride + kx) -
                                static_cast<long>(pad);
                if (iy < 0 || ix < 0 || iy >= static_cast<long>(h) ||
                    ix >= static_cast<long>(wdt)) {
                  continue;
                }
                acc += x(i, ic, static_cast<std::size_t>(iy),
                         static_cast<std::size_t>(ix)) *
                       w(o, ic, ky, kx);
              }
          y(i, o, oy, ox) = acc;
        }
  return y;
}

TEST(Conv2dTest, ForwardMatchesNaive) {
  Workspace ws;
  Rng rng(1);
  for (auto [stride, pad] : {std::pair<std::size_t, std::size_t>{1, 1},
                             {2, 1},
                             {1, 0},
                             {2, 0}}) {
    Conv2d conv(3, 4, 3, stride, pad, /*bias=*/false, rng);
    Tensor x = Tensor::randn({2, 3, 7, 6}, rng);
    const Tensor y = conv.forward(x, ws);
    const Tensor ref = naive_conv(x, conv.weight().value, stride, pad);
    ASSERT_EQ(y.shape(), ref.shape());
    EXPECT_LT(max_abs_diff(y, ref), 1e-4f)
        << "stride=" << stride << " pad=" << pad;
  }
}

TEST(Conv2dTest, BiasIsAddedPerChannel) {
  Workspace ws;
  Rng rng(2);
  Conv2d conv(1, 2, 1, 1, 0, /*bias=*/true, rng);
  conv.weight().value.fill(0.0f);
  conv.bias().value.at(0) = 1.5f;
  conv.bias().value.at(1) = -2.0f;
  Tensor x = Tensor::randn({1, 1, 2, 2}, rng);
  const Tensor y = conv.forward(x, ws);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y(0, 1, 1, 1), -2.0f);
}

TEST(Conv2dTest, GradCheck) {
  Rng rng(3);
  Conv2d conv(2, 3, 3, 1, 1, /*bias=*/true, rng);
  check_module_grads(conv, Tensor::randn({2, 2, 5, 5}, rng, 0.7f));
}

TEST(Conv2dTest, GradCheckStrided) {
  Rng rng(4);
  Conv2d conv(2, 2, 3, 2, 1, /*bias=*/false, rng);
  check_module_grads(conv, Tensor::randn({1, 2, 6, 6}, rng, 0.7f));
}

TEST(Conv2dTest, MacsPerSample) {
  Rng rng(5);
  Conv2d conv(3, 8, 3, 1, 1, false, rng);
  // 8 out-channels × 27 patch × 16 output pixels
  EXPECT_EQ(conv.macs_per_sample(4, 4), 8u * 27u * 16u);
}

TEST(Conv2dTest, RejectsWrongChannelCount) {
  Workspace ws;
  Rng rng(6);
  Conv2d conv(3, 4, 3, 1, 1, false, rng);
  EXPECT_THROW(conv.forward(Tensor({1, 2, 5, 5}), ws), Error);
  EXPECT_THROW(conv.forward(Tensor({5, 5}), ws), Error);
}

// ---- Linear ----------------------------------------------------------------

TEST(LinearTest, ForwardIsAffine) {
  Workspace ws;
  Rng rng(7);
  Linear fc(2, 2, true, rng);
  fc.weight().value = Tensor({2, 2}, std::vector<float>{1, 2, 3, 4});
  fc.bias().value = Tensor({2}, std::vector<float>{10, 20});
  Tensor x({1, 2}, std::vector<float>{1, 1});
  const Tensor y = fc.forward(x, ws);
  EXPECT_FLOAT_EQ(y(0, 0), 13.0f);  // 1+2+10
  EXPECT_FLOAT_EQ(y(0, 1), 27.0f);  // 3+4+20
}

TEST(LinearTest, GradCheck) {
  Rng rng(8);
  Linear fc(5, 4, true, rng);
  check_module_grads(fc, Tensor::randn({3, 5}, rng));
}

// ---- BatchNorm2d -----------------------------------------------------------

TEST(BatchNormTest, NormalisesBatchStatistics) {
  Workspace ws;
  Rng rng(9);
  BatchNorm2d bn(3);
  Tensor x = Tensor::randn({4, 3, 5, 5}, rng, 3.0f);
  x += 2.0f;
  const Tensor y = bn.forward(x, ws);
  // Per-channel mean ≈ 0, var ≈ 1 after normalisation (γ=1, β=0).
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t a = 0; a < 5; ++a)
        for (std::size_t b = 0; b < 5; ++b) mean += y(i, c, a, b);
    mean /= 100.0;
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t a = 0; a < 5; ++a)
        for (std::size_t b = 0; b < 5; ++b)
          var += (y(i, c, a, b) - mean) * (y(i, c, a, b) - mean);
    var /= 100.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, RunningStatsConvergeToDataStats) {
  Workspace ws;
  Rng rng(10);
  BatchNorm2d bn(1, /*momentum=*/0.5f);
  for (int i = 0; i < 20; ++i) {
    Tensor x = Tensor::randn({8, 1, 4, 4}, rng, 2.0f);
    x += 3.0f;
    bn.forward(x, ws);
  }
  EXPECT_NEAR(bn.running_mean().at(0), 3.0f, 0.3f);
  EXPECT_NEAR(bn.running_var().at(0), 4.0f, 0.8f);
}

TEST(BatchNormTest, EvalModeUsesRunningStats) {
  Workspace ws;
  Rng rng(11);
  BatchNorm2d bn(1);
  Tensor x = Tensor::randn({4, 1, 3, 3}, rng);
  bn.forward(x, ws);  // populate running stats a bit
  bn.set_training(false);
  // In eval mode the same input twice gives the same output (no batch
  // statistics involvement).
  const Tensor y1 = bn.forward(x, ws);
  const Tensor y2 = bn.forward(x, ws);
  EXPECT_EQ(max_abs_diff(y1, y2), 0.0f);
}

TEST(BatchNormTest, GradCheck) {
  Rng rng(12);
  BatchNorm2d bn(2);
  // Larger probe step: BN's float32 forward is roundoff-limited at small
  // eps (the analytic gradient itself is exact; see the eps sweep in the
  // commit history).
  check_module_grads(bn, Tensor::randn({3, 2, 4, 4}, rng), 5e-2f, 1e-2);
}

TEST(BatchNormTest, AffineParamsExemptFromWeightDecay) {
  BatchNorm2d bn(2);
  EXPECT_EQ(bn.gamma().weight_decay_scale, 0.0f);
  EXPECT_EQ(bn.beta().weight_decay_scale, 0.0f);
}

// ---- Activations / pooling -------------------------------------------------

TEST(ReLUTest, ForwardClampsNegative) {
  Workspace ws;
  ReLU relu;
  Tensor x = Tensor::from({-1, 0, 2});
  const Tensor y = relu.forward(x, ws);
  EXPECT_EQ(y(0), 0.0f);
  EXPECT_EQ(y(1), 0.0f);
  EXPECT_EQ(y(2), 2.0f);
}

TEST(ReLUTest, BackwardMasks) {
  Workspace ws;
  ReLU relu;
  Tensor x = Tensor::from({-1, 3});
  relu.forward(x, ws);
  const Tensor g = relu.backward(Tensor::from({5, 7}), ws);
  EXPECT_EQ(g(0), 0.0f);
  EXPECT_EQ(g(1), 7.0f);
}

TEST(MaxPoolTest, ForwardPicksMax) {
  Workspace ws;
  MaxPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  const Tensor y = pool.forward(x, ws);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 5.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  Workspace ws;
  MaxPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  pool.forward(x, ws);
  const Tensor g = pool.backward(Tensor({1, 1, 1, 1}, 2.0f), ws);
  EXPECT_FLOAT_EQ(g(0, 0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(g(0, 0, 0, 0), 0.0f);
}

TEST(AvgPoolTest, GradCheckViaModule) {
  Rng rng(13);
  AvgPool2d pool(2, 2);
  check_module_grads(pool, Tensor::randn({2, 2, 4, 4}, rng));
}

TEST(GlobalAvgPoolTest, ForwardAverages) {
  Workspace ws;
  GlobalAvgPool gap;
  Tensor x({1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor y = gap.forward(x, ws);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y(0, 1), 10.0f);
}

TEST(GlobalAvgPoolTest, GradCheck) {
  Rng rng(14);
  GlobalAvgPool gap;
  check_module_grads(gap, Tensor::randn({2, 3, 3, 3}, rng));
}

TEST(FlattenTest, RoundTripsShape) {
  Workspace ws;
  Flatten flatten;
  Tensor x({2, 3, 4, 5});
  const Tensor y = flatten.forward(x, ws);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  const Tensor g = flatten.backward(Tensor({2, 60}), ws);
  EXPECT_EQ(g.shape(), x.shape());
}

// ---- Containers ------------------------------------------------------------

TEST(SequentialTest, ChainsForwardAndBackward) {
  Rng rng(15);
  Sequential seq;
  seq.add<Linear>(4, 8, true, rng);
  seq.add<ReLU>();
  seq.add<Linear>(8, 2, true, rng);
  check_module_grads(seq, Tensor::randn({3, 4}, rng));
}

TEST(SequentialTest, CollectsAllParameters) {
  Rng rng(16);
  Sequential seq;
  seq.add<Linear>(4, 4, true, rng);
  seq.add<Linear>(4, 4, false, rng);
  EXPECT_EQ(seq.parameters().size(), 3u);  // w+b, w
  EXPECT_EQ(seq.parameter_count(), 4u * 4 + 4 + 4u * 4);
}

TEST(SequentialTest, SetTrainingRecurses) {
  Rng rng(17);
  Sequential seq;
  auto& bn = seq.add<BatchNorm2d>(2);
  seq.set_training(false);
  EXPECT_FALSE(bn.training());
  seq.set_training(true);
  EXPECT_TRUE(bn.training());
}

TEST(SequentialTest, VisitReachesNestedModules) {
  Rng rng(18);
  Sequential outer;
  auto inner = std::make_unique<Sequential>();
  inner->add<ReLU>();
  outer.add_module(std::move(inner));
  outer.add<ReLU>();
  int count = 0;
  outer.visit([&](Module&) { ++count; });
  EXPECT_EQ(count, 4);  // outer + inner + 2 ReLU
}

TEST(ResidualTest, IdentityShortcutAdds) {
  Workspace ws;
  Rng rng(19);
  auto main = std::make_unique<Sequential>();
  main->add<Linear>(3, 3, false, rng);
  Residual res(std::move(main), nullptr, nullptr);
  Tensor x = Tensor::randn({2, 3}, rng);
  const Tensor y = res.forward(x, ws);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(ResidualTest, MismatchedIdentityThrows) {
  Workspace ws;
  Rng rng(20);
  auto main = std::make_unique<Sequential>();
  main->add<Linear>(3, 5, false, rng);  // changes width
  Residual res(std::move(main), nullptr, nullptr);
  EXPECT_THROW(res.forward(Tensor::randn({2, 3}, rng), ws), Error);
}

TEST(ResidualTest, GradCheckWithProjection) {
  Rng rng(21);
  auto main = std::make_unique<Sequential>();
  main->add<Linear>(3, 5, true, rng);
  auto shortcut = std::make_unique<Sequential>();
  shortcut->add<Linear>(3, 5, false, rng);
  auto act = std::make_unique<ReLU>();
  Residual res(std::move(main), std::move(shortcut), std::move(act));
  check_module_grads(res, Tensor::randn({2, 3}, rng));
}

TEST(ResidualTest, GradCheckIdentity) {
  Rng rng(22);
  auto main = std::make_unique<Sequential>();
  main->add<Linear>(4, 4, true, rng);
  Residual res(std::move(main), nullptr, nullptr);
  check_module_grads(res, Tensor::randn({2, 4}, rng));
}

}  // namespace
}  // namespace ccq::nn
