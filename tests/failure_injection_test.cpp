// Failure-injection tests: how the stack behaves on degenerate inputs,
// pathological states and boundary topologies.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ccq/core/ccq.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/simple.hpp"
#include "ccq/nn/loss.hpp"

namespace ccq {
namespace {

TEST(FailureInjectionTest, HedgeRejectsNanProbeLoss) {
  core::HedgeCompetition hedge(3, 1.0);
  EXPECT_THROW(hedge.update(0, std::numeric_limits<double>::quiet_NaN()),
               Error);
  EXPECT_THROW(hedge.update(0, std::numeric_limits<double>::infinity()),
               Error);
}

TEST(FailureInjectionTest, LossRejectsEmptyBatch) {
  nn::SoftmaxCrossEntropy loss;
  Tensor empty({0, 4});
  EXPECT_THROW(loss.forward(empty, {}), Error);
}

TEST(FailureInjectionTest, SingleClassDatasetTrainsWithoutCrashing) {
  data::Dataset ds(3, 8, 8, 1);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    ds.add(Tensor::rand_uniform({3, 8, 8}, rng, 0.0f, 1.0f), 0);
  }
  data::Dataset val = ds.take_tail(5);
  models::ModelConfig mc;
  mc.num_classes = 1;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  auto model = models::make_mlp(mc, factory, quant::BitLadder({8, 2}), 8);
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 8;
  const auto stats = core::train(model, ds, val, cfg);
  EXPECT_EQ(stats.size(), 1u);
  EXPECT_FLOAT_EQ(stats[0].val_accuracy, 1.0f);  // only one class to get
}

TEST(FailureInjectionTest, TinyImagesSurviveTheConvStack) {
  Workspace ws;
  // 4×4 inputs through SimpleCNN's three stride-2 stages bottom out at
  // 1×1 — the geometry code must not underflow.
  models::ModelConfig mc;
  mc.num_classes = 3;
  mc.image_size = 4;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 2}));
  Rng rng(2);
  Tensor x = Tensor::rand_uniform({2, 3, 4, 4}, rng, 0.0f, 1.0f);
  EXPECT_EQ(model.forward(x, ws).shape(), (Shape{2, 3}));
}

TEST(FailureInjectionTest, CcqWithZeroMaxStepsDoesNothing) {
  data::SyntheticConfig dc;
  dc.num_classes = 3;
  dc.samples_per_class = 12;
  dc.height = dc.width = 8;
  data::Dataset train = data::make_synthetic_vision(dc);
  data::Dataset val = train.take_tail(9);
  models::ModelConfig mc;
  mc.num_classes = 3;
  mc.image_size = 8;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  auto model = models::make_mlp(mc, factory, quant::BitLadder({8, 2}), 8);
  core::CcqConfig config;
  config.max_steps = 0;
  config.initial_recovery_epochs = 1;
  config.probe_samples = 9;
  config.finetune.batch_size = 8;
  const auto r = core::run_ccq(model, train, val, config);
  EXPECT_TRUE(r.steps.empty());
  // Everything still snapped to N(0).
  for (int bits : r.final_bits) EXPECT_EQ(bits, 8);
}

TEST(FailureInjectionTest, AllLayersFrozenMakesCcqANoop) {
  data::SyntheticConfig dc;
  dc.num_classes = 3;
  dc.samples_per_class = 12;
  dc.height = dc.width = 8;
  data::Dataset train = data::make_synthetic_vision(dc);
  data::Dataset val = train.take_tail(9);
  models::ModelConfig mc;
  mc.num_classes = 3;
  mc.image_size = 8;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  auto model = models::make_mlp(mc, factory, quant::BitLadder({8, 2}), 8);
  for (std::size_t i = 0; i < model.registry().size(); ++i) {
    model.registry().force_bits(i, 8);
  }
  core::CcqConfig config;
  config.initial_recovery_epochs = 1;
  config.probe_samples = 9;
  config.finetune.batch_size = 8;
  const auto r = core::run_ccq(model, train, val, config);
  EXPECT_TRUE(r.steps.empty());
}

TEST(FailureInjectionTest, ExplodedWeightsStillQuantizeFinite) {
  // Quantizers must stay finite even on absurd weight magnitudes.
  Rng rng(3);
  Tensor w = Tensor::randn({128}, rng, 1e6f);
  for (quant::Policy policy :
       {quant::Policy::kDoReFa, quant::Policy::kWrpn, quant::Policy::kPact,
        quant::Policy::kPactSawb, quant::Policy::kLqNets, quant::Policy::kLsq,
        quant::Policy::kMinMax}) {
    quant::QuantFactory factory{.policy = policy};
    auto hook = factory.make_weight_hook("t");
    hook->set_bits(2);
    const Tensor q = hook->quantize(w);
    EXPECT_FALSE(q.has_nonfinite()) << quant::policy_str(policy);
  }
}

TEST(FailureInjectionTest, DenormalWeightsQuantizeFinite) {
  Tensor w({64}, 1e-38f);
  for (quant::Policy policy :
       {quant::Policy::kPactSawb, quant::Policy::kLqNets,
        quant::Policy::kMinMax}) {
    quant::QuantFactory factory{.policy = policy};
    auto hook = factory.make_weight_hook("t");
    hook->set_bits(3);
    const Tensor q = hook->quantize(w);
    EXPECT_FALSE(q.has_nonfinite()) << quant::policy_str(policy);
  }
}

TEST(FailureInjectionTest, EvaluateOnMismatchedModelThrows) {
  data::Dataset ds(3, 8, 8, 2);
  Rng rng(4);
  ds.add(Tensor::rand_uniform({3, 8, 8}, rng, 0.0f, 1.0f), 0);
  models::ModelConfig mc;
  mc.num_classes = 2;
  mc.image_size = 16;  // expects 16×16 input features
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  auto model = models::make_mlp(mc, factory, quant::BitLadder({8, 2}), 8);
  EXPECT_THROW(core::evaluate(model, ds), Error);
}

}  // namespace
}  // namespace ccq
