// Tests for per-channel weight quantization (extension; DESIGN.md §6).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ccq/quant/policy.hpp"
#include "ccq/quant/uniform.hpp"
#include "ccq/quant/weight_hooks.hpp"

namespace ccq::quant {
namespace {

/// Conv-like weights where one channel has 10× the dynamic range —
/// exactly the case per-tensor grids handle badly.
Tensor skewed_weights(std::size_t channels, std::size_t per_channel,
                      std::uint64_t seed) {
  Rng rng(seed);
  Tensor w({channels, per_channel});
  for (std::size_t c = 0; c < channels; ++c) {
    const float scale = c == 0 ? 1.0f : 0.1f;
    for (std::size_t i = 0; i < per_channel; ++i) {
      w(c, i) = static_cast<float>(rng.normal(0.0, scale));
    }
  }
  return w;
}

TEST(PerChannelTest, EachChannelGetsItsOwnClip) {
  PerChannelWeightHook hook;
  hook.set_bits(4);
  Tensor w = skewed_weights(4, 64, 1);
  hook.quantize(w);
  const auto& clips = hook.last_clips();
  ASSERT_EQ(clips.size(), 4u);
  EXPECT_GT(clips[0], 5.0f * clips[1]);  // the wide channel
  for (float c : clips) EXPECT_GT(c, 0.0f);
}

TEST(PerChannelTest, CodomainBoundedPerChannel) {
  PerChannelWeightHook hook;
  hook.set_bits(3);
  Tensor w = skewed_weights(3, 200, 2);
  const Tensor q = hook.quantize(w);
  for (std::size_t c = 0; c < 3; ++c) {
    std::set<float> values;
    for (std::size_t i = 0; i < 200; ++i) values.insert(q(c, i));
    EXPECT_LE(values.size(), 7u);  // 2·(2²−1)+1 grid points
  }
}

TEST(PerChannelTest, BeatsPerTensorMseOnSkewedChannels) {
  // The whole point of per-channel grids: a narrow channel is not forced
  // onto the wide channel's coarse grid.  The wide channel's error is the
  // same either way, so measure the narrow channels where the win lives.
  Tensor w = skewed_weights(4, 256, 3);
  PerChannelWeightHook per_channel;
  per_channel.set_bits(3);
  MinMaxWeightHook per_tensor;
  per_tensor.set_bits(3);
  const Tensor qc = per_channel.quantize(w);
  const Tensor qt = per_tensor.quantize(w);
  auto narrow_mse = [&](const Tensor& q) {
    double acc = 0.0;
    for (std::size_t c = 1; c < 4; ++c) {
      for (std::size_t i = 0; i < 256; ++i) {
        acc += static_cast<double>(w(c, i) - q(c, i)) * (w(c, i) - q(c, i));
      }
    }
    return acc;
  };
  EXPECT_LT(narrow_mse(qc), 0.2 * narrow_mse(qt));
  // And the total must not get worse.
  const Tensor dc = w - qc;
  const Tensor dt = w - qt;
  EXPECT_LE(dc.sqnorm(), dt.sqnorm());
}

TEST(PerChannelTest, FullPrecisionPassThrough) {
  PerChannelWeightHook hook;
  hook.set_bits(32);
  Tensor w = skewed_weights(2, 16, 4);
  EXPECT_EQ(max_abs_diff(hook.quantize(w), w), 0.0f);
}

TEST(PerChannelTest, SteIsIdentity) {
  PerChannelWeightHook hook;
  hook.set_bits(2);
  Tensor w = skewed_weights(2, 16, 5);
  hook.quantize(w);
  Rng rng(6);
  Tensor g = Tensor::randn({2, 16}, rng);
  EXPECT_EQ(max_abs_diff(hook.backward(w, g), g), 0.0f);
}

TEST(PerChannelTest, Rank4ConvWeightsSupported) {
  Rng rng(7);
  Tensor w = Tensor::randn({8, 4, 3, 3}, rng, 0.2f);
  PerChannelWeightHook hook;
  hook.set_bits(4);
  const Tensor q = hook.quantize(w);
  EXPECT_EQ(q.shape(), w.shape());
  EXPECT_EQ(hook.last_clips().size(), 8u);
}

TEST(PerChannelTest, RegisteredInPolicyFactory) {
  EXPECT_EQ(policy_from_str("PerChannel"), Policy::kPerChannel);
  QuantFactory factory{.policy = Policy::kPerChannel};
  auto hook = factory.make_weight_hook("x");
  EXPECT_EQ(hook->policy_name(), "PerChannel");
  EXPECT_EQ(factory.make_activation("x")->type_name(), "PactActivation");
}

}  // namespace
}  // namespace ccq::quant
