// Property tests for the core uniform quantization math (paper Eq. 2/3).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ccq/quant/uniform.hpp"

namespace ccq::quant {
namespace {

class SymmetricGridTest : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricGridTest, CodomainSizeIsAtMostGridSize) {
  const int bits = GetParam();
  Rng rng(bits);
  Tensor w = Tensor::randn({2000}, rng);
  Tensor q = quantize_symmetric(w, bits, 1.0f);
  std::set<float> values(q.data().begin(), q.data().end());
  EXPECT_LE(values.size(),
            static_cast<std::size_t>(2 * symmetric_levels(bits) + 1));
  EXPECT_GT(values.size(), 1u);
}

TEST_P(SymmetricGridTest, Idempotent) {
  const int bits = GetParam();
  Rng rng(bits + 100);
  Tensor w = Tensor::randn({500}, rng);
  Tensor q1 = quantize_symmetric(w, bits, 0.8f);
  Tensor q2 = quantize_symmetric(q1, bits, 0.8f);
  EXPECT_LT(max_abs_diff(q1, q2), 1e-6f);
}

TEST_P(SymmetricGridTest, OutputWithinClip) {
  const int bits = GetParam();
  Rng rng(bits + 200);
  Tensor w = Tensor::randn({500}, rng, 3.0f);
  Tensor q = quantize_symmetric(w, bits, 0.5f);
  EXPECT_LE(q.max(), 0.5f + 1e-6f);
  EXPECT_GE(q.min(), -0.5f - 1e-6f);
}

TEST_P(SymmetricGridTest, Monotone) {
  const int bits = GetParam();
  float prev = -10.0f;
  for (float x = -2.0f; x <= 2.0f; x += 0.01f) {
    const float q = quantize_symmetric(x, bits, 1.0f);
    EXPECT_GE(q, prev - 1e-7f) << "at x=" << x;
    prev = q;
  }
}

TEST_P(SymmetricGridTest, OddSymmetry) {
  const int bits = GetParam();
  for (float x = 0.0f; x <= 2.0f; x += 0.037f) {
    EXPECT_NEAR(quantize_symmetric(-x, bits, 1.0f),
                -quantize_symmetric(x, bits, 1.0f), 1e-6f);
  }
}

TEST_P(SymmetricGridTest, ZeroIsRepresentable) {
  EXPECT_EQ(quantize_symmetric(0.0f, GetParam(), 1.0f), 0.0f);
}

TEST_P(SymmetricGridTest, ValuesLandOnTheGrid) {
  const int bits = GetParam();
  const auto grid = symmetric_grid(bits, 0.7f);
  Rng rng(bits + 300);
  for (int i = 0; i < 200; ++i) {
    const float q = quantize_symmetric(
        static_cast<float>(rng.normal(0.0, 1.0)), bits, 0.7f);
    bool on_grid = false;
    for (float g : grid) {
      if (std::fabs(g - q) < 1e-5f) {
        on_grid = true;
        break;
      }
    }
    EXPECT_TRUE(on_grid) << "value " << q << " off grid";
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, SymmetricGridTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

TEST(UniformTest, QuantizeUnitEndpoints) {
  EXPECT_EQ(quantize_unit(0.0f, 4), 0.0f);
  EXPECT_EQ(quantize_unit(1.0f, 4), 1.0f);
  EXPECT_EQ(quantize_unit(-0.5f, 4), 0.0f);  // clipped
  EXPECT_EQ(quantize_unit(1.5f, 4), 1.0f);   // clipped
}

TEST(UniformTest, QuantizeUnitLevelCount) {
  // 2-bit unsigned grid: {0, 1/3, 2/3, 1}.
  std::set<float> values;
  for (float x = 0.0f; x <= 1.0f; x += 0.001f) {
    values.insert(quantize_unit(x, 2));
  }
  EXPECT_EQ(values.size(), 4u);
}

TEST(UniformTest, UnsignedScalesWithClip) {
  EXPECT_NEAR(quantize_unsigned(3.0f, 2, 6.0f), 4.0f, 1e-5f);
  EXPECT_NEAR(quantize_unsigned(10.0f, 2, 6.0f), 6.0f, 1e-5f);
}

TEST(UniformTest, FullPrecisionPassThroughClips) {
  EXPECT_EQ(quantize_unsigned(0.4f, 32, 1.0f), 0.4f);
  EXPECT_EQ(quantize_unsigned(1.4f, 32, 1.0f), 1.0f);
  EXPECT_EQ(quantize_symmetric(-0.3f, 32, 1.0f), -0.3f);
}

TEST(UniformTest, InvalidArgumentsThrow) {
  EXPECT_THROW(quantize_unit(0.5f, 0), Error);
  EXPECT_THROW(quantize_symmetric(0.5f, 4, -1.0f), Error);
  EXPECT_THROW(quantize_symmetric(0.5f, 1, 1.0f), Error);
}

TEST(UniformTest, MseDecreasesWithBits) {
  Rng rng(42);
  Tensor w = Tensor::randn({5000}, rng);
  float prev = 1e30f;
  for (int bits : {2, 3, 4, 6, 8}) {
    const float mse = quantization_mse(w, bits, 2.5f);
    EXPECT_LT(mse, prev) << "bits=" << bits;
    prev = mse;
  }
}

TEST(UniformTest, MseIsZeroForRepresentableInput) {
  const auto grid = symmetric_grid(3, 1.0f);
  Tensor w({grid.size()}, grid);
  EXPECT_NEAR(quantization_mse(w, 3, 1.0f), 0.0f, 1e-10f);
}

TEST(UniformTest, GridHasExpectedStructure) {
  const auto grid = symmetric_grid(2, 1.0f);
  ASSERT_EQ(grid.size(), 3u);  // {−1, 0, +1}
  EXPECT_FLOAT_EQ(grid[0], -1.0f);
  EXPECT_FLOAT_EQ(grid[1], 0.0f);
  EXPECT_FLOAT_EQ(grid[2], 1.0f);
}

TEST(UniformTest, LevelsHelpers) {
  EXPECT_EQ(unsigned_levels(2), 3.0f);
  EXPECT_EQ(unsigned_levels(8), 255.0f);
  EXPECT_EQ(symmetric_levels(2), 1.0f);
  EXPECT_EQ(symmetric_levels(8), 127.0f);
}

}  // namespace
}  // namespace ccq::quant
