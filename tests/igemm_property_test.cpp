// Differential tests for the igemm kernel-dispatch family.
//
// The contract under test: for every bit width, shape, blocking factor,
// thread count AND kernel variant (scalar / vec16 / vec-packed), packing
// an `IgemmPanel` and executing the `IgemmOp` through `igemm_run` is
// bit-identical to a naive int64 triple loop — the 10-line reference
// below IS the specification; every kernel merely reorders exact integer
// arithmetic.  The sweep includes degenerate shapes (k = 0, single-row,
// single-column), alignment edges (depths straddling the SIMD lane
// padding), depths that straddle the int32/int64 accumulator bound, and
// a seeded randomized round of layer-like configs (fixed RNG, so
// failures reproduce exactly).  Registry selection, the env override and
// the deprecated positional shims are covered at the end.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "ccq/common/error.hpp"
#include "ccq/common/rng.hpp"
#include "ccq/hw/fixed_point.hpp"
#include "ccq/tensor/igemm.hpp"

namespace ccq {
namespace {

// ---- the specification ------------------------------------------------------

/// C[i,j] = float(Σ_p W[i,p]·X[p,j]) · scale[i] + bias[i]
void ref_wx(std::size_t m, std::size_t n, std::size_t k,
            const std::vector<std::int32_t>& w,
            const std::vector<std::int32_t>& x,
            const std::vector<float>& scale, const std::vector<float>& bias,
            std::vector<float>& c) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::size_t p = 0; p < k; ++p)
        acc += std::int64_t{w[i * k + p]} * std::int64_t{x[p * n + j]};
      c[i * n + j] = static_cast<float>(acc) * scale[i] + bias[i];
    }
}

/// C[i,j] = float(Σ_p X[i,p]·W[p,j]) · scale[j] + bias[j]
void ref_xw(std::size_t m, std::size_t n, std::size_t k,
            const std::vector<std::int32_t>& x,
            const std::vector<std::int32_t>& w,
            const std::vector<float>& scale, const std::vector<float>& bias,
            std::vector<float>& c) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::size_t p = 0; p < k; ++p)
        acc += std::int64_t{x[i * k + p]} * std::int64_t{w[p * n + j]};
      c[i * n + j] = static_cast<float>(acc) * scale[j] + bias[j];
    }
}

// ---- fixtures ---------------------------------------------------------------

struct Problem {
  std::size_t m, n, k;
  std::vector<std::int32_t> w;   // m×k weight codes (row-major)
  std::vector<std::int32_t> x;   // k×n activation codes (row-major)
  std::vector<float> row_scale, row_bias;  // per-row (kWX)
  std::vector<float> col_scale, col_bias;  // per-column (kXW)
};

Problem make_problem(Rng& rng, std::size_t m, std::size_t n, std::size_t k,
                     std::int32_t max_w, std::int32_t max_x) {
  Problem p;
  p.m = m;
  p.n = n;
  p.k = k;
  p.w.resize(m * k);
  p.x.resize(k * n);
  for (auto& v : p.w) {
    v = static_cast<std::int32_t>(rng.uniform_int(2 * max_w + 1)) - max_w;
  }
  for (auto& v : p.x) {
    // Activation codes are non-negative (ReLU-clipped grids) with a
    // sprinkle of zeros, matching what the engine feeds the kernel.
    v = static_cast<std::int32_t>(rng.uniform_int(max_x + 1));
    if (rng.uniform() < 0.25) v = 0;
  }
  p.row_scale.resize(m);
  p.row_bias.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    p.row_scale[i] = static_cast<float>(rng.uniform(0.001, 0.1));
    p.row_bias[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  p.col_scale.resize(n);
  p.col_bias.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    p.col_scale[j] = static_cast<float>(rng.uniform(0.001, 0.1));
    p.col_bias[j] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return p;
}

/// Every concrete kernel whose eligibility rule admits these bounds.
std::vector<IgemmKernel> eligible_kernels(std::int32_t w_max,
                                          std::int64_t x_bound,
                                          IgemmAccum accum) {
  std::vector<IgemmKernel> kernels{IgemmKernel::kScalar};
  for (IgemmKernel k : {IgemmKernel::kVec16, IgemmKernel::kVecPacked}) {
    if (igemm_kernel_eligible(k, w_max, x_bound, accum)) kernels.push_back(k);
  }
  return kernels;
}

/// Run both op forms through every eligible kernel × accumulator and
/// demand bit-identity with the int64 reference.
void expect_bit_identical(const Problem& p, const ExecContext& ctx,
                          const IgemmBlocking& blk) {
  const std::int32_t max_w = igemm_max_abs(p.w);
  const std::int64_t x_bound =
      std::max<std::int64_t>(igemm_max_abs(p.x), 1);

  std::vector<IgemmAccum> accums{IgemmAccum::kInt64};
  if (igemm_fits_int32(max_w, x_bound, p.k)) {
    accums.push_back(IgemmAccum::kInt32);
  }

  // W·X form (conv after im2col): W is m×k, X is k×n, per-row epilogue.
  std::vector<float> want(p.m * p.n), got(p.m * p.n);
  ref_wx(p.m, p.n, p.k, p.w, p.x, p.row_scale, p.row_bias, want);
  for (IgemmAccum accum : accums) {
    for (IgemmKernel kernel : eligible_kernels(max_w, x_bound, accum)) {
      const IgemmPanel panel =
          igemm_pack(p.w, p.m, p.k, IgemmForm::kWX, kernel);
      IgemmOp op;
      op.form = IgemmForm::kWX;
      op.m = p.m;
      op.n = p.n;
      op.k = p.k;
      op.panel = &panel;
      op.x = p.x.data();
      op.c = got.data();
      op.epilogue = {p.row_scale.data(), p.row_bias.data()};
      op.accum = accum;
      op.blocking = blk;
      op.x_bound = x_bound;
      std::fill(got.begin(), got.end(), -7.0f);
      igemm_run(op, ctx);
      ASSERT_EQ(want, got)
          << "kWX kernel=" << igemm_kernel_str(kernel) << " m=" << p.m
          << " n=" << p.n << " k=" << p.k << " threads=" << ctx.threads()
          << " nc=" << blk.nc << " kc=" << blk.kc
          << " accum=" << static_cast<int>(accum);
    }
  }

  // X·W form (linear): a batch of k-length activation rows (columns of
  // the X above) against the weight panel on the right, so the output
  // lands batch×m with per-column scale/bias — exactly how the engine
  // drives linear layers.
  const std::size_t batch = p.n == 0 ? 0 : std::min<std::size_t>(p.n, 6);
  std::vector<std::int32_t> xl(batch * p.k);
  for (std::size_t i = 0; i < batch; ++i)
    for (std::size_t pp = 0; pp < p.k; ++pp)
      xl[i * p.k + pp] = p.x[pp * p.n + i];  // column i of X
  std::vector<std::int32_t> wt(p.k * p.m);
  for (std::size_t pp = 0; pp < p.k; ++pp)
    for (std::size_t i = 0; i < p.m; ++i) wt[pp * p.m + i] = p.w[i * p.k + pp];
  std::vector<float> want2(batch * p.m), got2(batch * p.m);
  ref_xw(batch, p.m, p.k, xl, wt, p.row_scale, p.row_bias, want2);
  for (IgemmAccum accum : accums) {
    for (IgemmKernel kernel : eligible_kernels(max_w, x_bound, accum)) {
      const IgemmPanel panel =
          igemm_pack(p.w, p.m, p.k, IgemmForm::kXW, kernel);
      IgemmOp op;
      op.form = IgemmForm::kXW;
      op.m = batch;
      op.n = p.m;
      op.k = p.k;
      op.panel = &panel;
      op.x = xl.data();
      op.c = got2.data();
      op.epilogue = {p.row_scale.data(), p.row_bias.data()};
      op.accum = accum;
      op.blocking = blk;
      op.x_bound = x_bound;
      std::fill(got2.begin(), got2.end(), -7.0f);
      igemm_run(op, ctx);
      ASSERT_EQ(want2, got2)
          << "kXW kernel=" << igemm_kernel_str(kernel) << " batch=" << batch
          << " m=" << p.m << " k=" << p.k << " threads=" << ctx.threads()
          << " nc=" << blk.nc << " kc=" << blk.kc
          << " accum=" << static_cast<int>(accum);
    }
  }
}

const ExecContext& ctx_for(std::size_t threads) {
  static const ExecContext one;       // serial
  static const ExecContext two(2);
  static const ExecContext four(4);
  switch (threads) {
    case 2: return two;
    case 4: return four;
    default: return one;
  }
}

// ---- parameterized sweep ----------------------------------------------------

struct Shape {
  std::size_t m, n, k;
};

class IgemmSweep : public ::testing::TestWithParam<std::tuple<int, Shape>> {};

TEST_P(IgemmSweep, BitIdenticalAcrossKernelsBlockingsAndThreads) {
  const int bits = std::get<0>(GetParam());
  const Shape s = std::get<1>(GetParam());
  // Doubled k-bit weight codes lie in ±2^bits; activations come from the
  // 8-bit input grid at most.
  const auto max_w = static_cast<std::int32_t>(1 << bits);
  const std::int32_t max_x = 255;
  Rng rng(0x51C0DE + static_cast<std::uint64_t>(bits) * 1000003 +
          s.m * 7919 + s.n * 104729 + s.k);
  const Problem p = make_problem(rng, s.m, s.n, s.k, max_w, max_x);

  const IgemmBlocking blockings[] = {
      {},                                     // production defaults
      {.nc = 1, .kc = 1, .row_grain = 1},     // fully degenerate tiles
      {.nc = 3, .kc = 5, .row_grain = 2},     // awkward odd tiles
      {.nc = 512, .kc = 1 << 20, .row_grain = 64},  // one giant tile
      {.nc = kIgemmMaxNc + 100, .kc = 7, .row_grain = 3},  // nc clamped
  };
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const IgemmBlocking& blk : blockings) {
      expect_bit_identical(p, ctx_for(threads), blk);
      if (HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndShapes, IgemmSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(Shape{1, 1, 0},    // empty depth
                                         Shape{1, 7, 3},    // single row
                                         Shape{5, 1, 9},    // single column
                                         Shape{8, 33, 7},   // sub-tile
                                         Shape{16, 17, 131},  // kc straddle
                                         Shape{3, 259, 5},    // nc straddle
                                         Shape{4, 600, 3},    // n > max nc
                                         Shape{6, 29, 64})));

// Alignment edges: depths around the vec16 (16-lane) and vec-packed
// (32-lane) padding boundaries, crossed with column counts around the
// 4-wide register tile — the zero-padded lane tails and the dot1
// column tail must not change a single bit.
TEST(IgemmAlignmentEdge, LanePaddingAndColumnTails) {
  Rng rng(0xA11C4ED);
  for (std::size_t k : {std::size_t{1}, std::size_t{7}, std::size_t{15},
                        std::size_t{16}, std::size_t{17}, std::size_t{31},
                        std::size_t{32}, std::size_t{33}, std::size_t{63}}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
      // 3-bit codes with 255-bound activations: both vector kernels
      // eligible, so all three variants run per config.
      const Problem p = make_problem(rng, 5, n, k, /*max_w=*/8,
                                     /*max_x=*/255);
      expect_bit_identical(p, ctx_for(2), {});
      if (HasFatalFailure()) {
        ADD_FAILURE() << "failing alignment edge: k=" << k << " n=" << n;
        return;
      }
    }
  }
}

// Depths that straddle the int32 accumulator bound at full 8-bit code
// magnitudes: the kernels must agree with the reference on BOTH sides —
// int32 (and the vector kernels) just below the bound, forced int64
// (scalar only) just above it.
TEST(IgemmBoundStraddle, ExactAcrossTheAccumulatorBound) {
  const std::int32_t max_w = 256, max_x = 255;  // 8-bit envelope
  // 256·255·k ≤ INT32_MAX ⇔ k ≤ 32896 (65280·32896 = 2,147,450,880).
  ASSERT_TRUE(igemm_fits_int32(max_w, max_x, 32896));
  ASSERT_FALSE(igemm_fits_int32(max_w, max_x, 32897));
  Rng rng(0xB0B0);
  for (std::size_t k : {std::size_t{32896}, std::size_t{32897}}) {
    const Problem p = make_problem(rng, 2, 3, k, max_w, max_x);
    expect_bit_identical(p, ctx_for(4), {});
  }
}

// ---- seeded randomized round ------------------------------------------------

TEST(IgemmRandomized, TwoHundredLayerConfigs) {
  Rng rng(0xCC0FFEE);  // fixed seed: failures replay bit-exactly
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t m = 1 + rng.uniform_int(24);
    const std::size_t n = 1 + rng.uniform_int(400);
    // ~5% of configs get k = 0 (a conv over an empty patch never occurs,
    // but the kernel contract covers it: pure bias epilogue).
    const std::size_t k = rng.uniform() < 0.05 ? 0 : 1 + rng.uniform_int(260);
    const int bits = 2 + static_cast<int>(rng.uniform_int(7));
    const auto max_w = static_cast<std::int32_t>(1 << bits);
    const std::int32_t max_x =
        static_cast<std::int32_t>(1 + rng.uniform_int(255));
    const Problem p = make_problem(rng, m, n, k, max_w, max_x);
    const IgemmBlocking blk{.nc = 1 + rng.uniform_int(600),
                            .kc = 1 + rng.uniform_int(300),
                            .row_grain = 1 + rng.uniform_int(16)};
    const std::size_t threads = std::size_t{1} << rng.uniform_int(3);  // 1/2/4
    expect_bit_identical(p, ctx_for(threads), blk);
    if (HasFatalFailure()) {
      ADD_FAILURE() << "failing config: iter=" << iter << " m=" << m
                    << " n=" << n << " k=" << k << " bits=" << bits;
      return;
    }
  }
}

// ---- kernel registry --------------------------------------------------------

TEST(IgemmRegistry, NamesRoundTripAndOrder) {
  const std::vector<std::string> names = igemm_kernel_names();
  ASSERT_EQ(names,
            (std::vector<std::string>{"scalar", "vec16", "vec-packed",
                                      "auto"}));
  for (const std::string& name : names) {
    EXPECT_EQ(igemm_kernel_str(igemm_kernel_from_str(name)), name);
  }
}

TEST(IgemmRegistry, UnknownNameListsAvailableKernels) {
  try {
    igemm_kernel_from_str("warp9");
    FAIL() << "expected ccq::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("warp9"), std::string::npos) << msg;
    for (const std::string& name : igemm_kernel_names()) {
      EXPECT_NE(msg.find(name), std::string::npos)
          << "error must list '" << name << "': " << msg;
    }
  }
}

TEST(IgemmRegistry, EligibilityRules) {
  using K = IgemmKernel;
  // Scalar runs anything.
  EXPECT_TRUE(igemm_kernel_eligible(K::kScalar, 1 << 20, 0,
                                    IgemmAccum::kInt64));
  // Vector kernels need an int32 accumulator and a known activation bound.
  EXPECT_FALSE(igemm_kernel_eligible(K::kVec16, 8, 255, IgemmAccum::kInt64));
  EXPECT_FALSE(igemm_kernel_eligible(K::kVec16, 8, 0, IgemmAccum::kInt32));
  EXPECT_TRUE(igemm_kernel_eligible(K::kVec16, 8, 255, IgemmAccum::kInt32));
  EXPECT_TRUE(igemm_kernel_eligible(K::kVec16, 32767, 32767,
                                    IgemmAccum::kInt32));
  EXPECT_FALSE(igemm_kernel_eligible(K::kVec16, 40000, 255,
                                     IgemmAccum::kInt32));
  // vec-packed: int8 weights, uint8 activations, no int16 pair saturation.
  EXPECT_TRUE(igemm_kernel_eligible(K::kVecPacked, 16, 255,
                                    IgemmAccum::kInt32));
  EXPECT_FALSE(igemm_kernel_eligible(K::kVecPacked, 128, 255,
                                     IgemmAccum::kInt32));  // w > int8
  EXPECT_FALSE(igemm_kernel_eligible(K::kVecPacked, 16, 256,
                                     IgemmAccum::kInt32));  // x > uint8
  // 2·127·255 = 64770 > 32767: saturation risk, must be rejected even
  // though both lane types fit individually.
  EXPECT_FALSE(igemm_kernel_eligible(K::kVecPacked, 127, 255,
                                     IgemmAccum::kInt32));
  EXPECT_TRUE(igemm_kernel_eligible(K::kVecPacked, 64, 255,
                                    IgemmAccum::kInt32));
  // kAuto is a policy, never directly executable.
  EXPECT_FALSE(igemm_kernel_eligible(K::kAuto, 8, 255, IgemmAccum::kInt32));
}

TEST(IgemmRegistry, SelectionWalksTheDensityLadder) {
  using K = IgemmKernel;
  // Low-bit layer: auto picks vec-packed when the build carries 8-bit
  // SIMD, vec16 otherwise.
  const K low = igemm_select_kernel(K::kAuto, 8, 255, IgemmAccum::kInt32);
  EXPECT_EQ(low, igemm_packed_simd() ? K::kVecPacked : K::kVec16);
  // Saturation-risky bounds skip vec-packed regardless of build.
  EXPECT_EQ(igemm_select_kernel(K::kAuto, 127, 255, IgemmAccum::kInt32),
            K::kVec16);
  // int64 accumulation confines execution to scalar.
  EXPECT_EQ(igemm_select_kernel(K::kAuto, 8, 255, IgemmAccum::kInt64),
            K::kScalar);
  // An eligible explicit request is honoured as-is...
  EXPECT_EQ(igemm_select_kernel(K::kVec16, 8, 255, IgemmAccum::kInt32),
            K::kVec16);
  EXPECT_EQ(igemm_select_kernel(K::kScalar, 8, 255, IgemmAccum::kInt32),
            K::kScalar);
  EXPECT_EQ(igemm_select_kernel(K::kVecPacked, 8, 255, IgemmAccum::kInt32),
            K::kVecPacked);
  // ...an ineligible one falls down the same ladder as kAuto.
  EXPECT_EQ(igemm_select_kernel(K::kVecPacked, 8, 255, IgemmAccum::kInt64),
            K::kScalar);
}

TEST(IgemmRegistry, EnvOverrideParsesAndRejects) {
  const char* saved = std::getenv("CCQ_IGEMM_KERNEL");
  const std::string restore = saved != nullptr ? saved : "";
  unsetenv("CCQ_IGEMM_KERNEL");
  EXPECT_EQ(igemm_requested_kernel(), IgemmKernel::kAuto);
  setenv("CCQ_IGEMM_KERNEL", "scalar", 1);
  EXPECT_EQ(igemm_requested_kernel(), IgemmKernel::kScalar);
  setenv("CCQ_IGEMM_KERNEL", "vec16", 1);
  EXPECT_EQ(igemm_requested_kernel(), IgemmKernel::kVec16);
  setenv("CCQ_IGEMM_KERNEL", "hyperdrive", 1);
  EXPECT_THROW(igemm_requested_kernel(), Error);
  if (saved != nullptr) {
    setenv("CCQ_IGEMM_KERNEL", restore.c_str(), 1);
  } else {
    unsetenv("CCQ_IGEMM_KERNEL");
  }
}

// ---- op validation ----------------------------------------------------------

TEST(IgemmRunValidation, RejectsMismatchedPanels) {
  const std::vector<std::int32_t> codes{1, -2, 3, 4, -5, 6};  // 2×3
  const IgemmPanel panel =
      igemm_pack(codes, 2, 3, IgemmForm::kWX, IgemmKernel::kScalar);
  const std::vector<std::int32_t> x(3, 1);
  const std::vector<float> scale(2, 1.0f), bias(2, 0.0f);
  std::vector<float> c(2);
  IgemmOp op;
  op.form = IgemmForm::kWX;
  op.m = 2;
  op.n = 1;
  op.k = 3;
  op.panel = &panel;
  op.x = x.data();
  op.c = c.data();
  op.epilogue = {scale.data(), bias.data()};
  op.accum = IgemmAccum::kInt64;
  EXPECT_NO_THROW(igemm_run(op));

  IgemmOp bad_form = op;
  bad_form.form = IgemmForm::kXW;
  bad_form.m = 1;
  bad_form.n = 2;
  EXPECT_THROW(igemm_run(bad_form), Error);

  IgemmOp bad_depth = op;
  bad_depth.k = 4;
  EXPECT_THROW(igemm_run(bad_depth), Error);

  IgemmOp no_panel = op;
  no_panel.panel = nullptr;
  EXPECT_THROW(igemm_run(no_panel), Error);
}

TEST(IgemmRunValidation, RejectsIneligibleKernelForOpBounds) {
  const std::vector<std::int32_t> codes{1, -2, 3, 4, -5, 6};
  const IgemmPanel panel =
      igemm_pack(codes, 2, 3, IgemmForm::kWX, IgemmKernel::kVec16);
  const std::vector<std::int32_t> x(3, 1);
  const std::vector<float> scale(2, 1.0f), bias(2, 0.0f);
  std::vector<float> c(2);
  IgemmOp op;
  op.form = IgemmForm::kWX;
  op.m = 2;
  op.n = 1;
  op.k = 3;
  op.panel = &panel;
  op.x = x.data();
  op.c = c.data();
  op.epilogue = {scale.data(), bias.data()};
  op.accum = IgemmAccum::kInt32;
  op.x_bound = 255;
  EXPECT_NO_THROW(igemm_run(op));
  op.x_bound = 0;  // unknown activation bound: vec16 may not run
  EXPECT_THROW(igemm_run(op), Error);
  op.x_bound = 255;
  op.accum = IgemmAccum::kInt64;  // vec16 is an int32-accumulator kernel
  EXPECT_THROW(igemm_run(op), Error);
}

TEST(IgemmPack, DotLayoutPadsDepthToLaneMultiples) {
  const std::vector<std::int32_t> codes{1, 2, 3, 4, 5, 6};  // 2×3
  const IgemmPanel v16 =
      igemm_pack(codes, 2, 3, IgemmForm::kWX, IgemmKernel::kVec16);
  EXPECT_EQ(v16.stride, 16u);
  ASSERT_EQ(v16.i16.size(), 2u * 16u);
  EXPECT_EQ(v16.i16[0], 1);
  EXPECT_EQ(v16.i16[2], 3);
  EXPECT_EQ(v16.i16[3], 0);  // zero padding
  EXPECT_EQ(v16.i16[16], 4);  // second row starts on the stride
  EXPECT_EQ(v16.max_abs, 6);

  const IgemmPanel v8 =
      igemm_pack(codes, 2, 3, IgemmForm::kXW, IgemmKernel::kVecPacked);
  EXPECT_EQ(v8.stride, 32u);
  ASSERT_EQ(v8.i8.size(), 2u * 32u);
  EXPECT_EQ(v8.i8[32], 4);
  EXPECT_TRUE(v8.i16.empty());
}

TEST(IgemmPack, RejectsCodesOutsideTheKernelLaneType) {
  std::vector<std::int32_t> codes{0, 1, 200, 2};
  // 200 fits int16 lanes but not vec-packed's int8 lanes.
  EXPECT_NO_THROW(
      igemm_pack(codes, 2, 2, IgemmForm::kWX, IgemmKernel::kVec16));
  EXPECT_THROW(
      igemm_pack(codes, 2, 2, IgemmForm::kWX, IgemmKernel::kVecPacked),
      Error);
  codes[2] = 40000;  // beyond int16: every kernel rejects
  EXPECT_THROW(
      igemm_pack(codes, 2, 2, IgemmForm::kWX, IgemmKernel::kScalar), Error);
  EXPECT_THROW(
      igemm_pack(codes, 2, 2, IgemmForm::kWX, IgemmKernel::kVec16), Error);
  // kAuto is not a packable layout.
  codes[2] = 1;
  EXPECT_THROW(igemm_pack(codes, 2, 2, IgemmForm::kWX, IgemmKernel::kAuto),
               Error);
}

// ---- accumulator bound unit tests -------------------------------------------

TEST(IgemmFitsInt32, ExactBoundary) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int32_t>::max();
  // 1·1·INT32_MAX == INT32_MAX: the last admissible config.
  EXPECT_TRUE(igemm_fits_int32(1, 1, static_cast<std::size_t>(kMax)));
  EXPECT_FALSE(igemm_fits_int32(1, 1, static_cast<std::size_t>(kMax) + 1));
  // 510·255·16512 = 2,147,385,600 ≤ INT32_MAX; one more k-step exceeds.
  EXPECT_TRUE(igemm_fits_int32(510, 255, 16512));
  EXPECT_FALSE(igemm_fits_int32(510, 255, 16513));
  // Degenerate operands always fit: the sum is identically zero.
  EXPECT_TRUE(igemm_fits_int32(0, 255, 1u << 30));
  EXPECT_TRUE(igemm_fits_int32(510, 0, 1u << 30));
  EXPECT_TRUE(igemm_fits_int32(510, 255, 0));
  // The per-term product alone can bust int32 — and the predicate must
  // not itself overflow while deciding that.
  EXPECT_FALSE(igemm_fits_int32(kMax, kMax, 1));
  EXPECT_FALSE(igemm_fits_int32(1 << 20, 1 << 20, 4));
}

TEST(IgemmFitsInt32, BoundaryCodesRunExactInInt32) {
  // One product at the very top of int32: 32767 · 65535 = 2,147,385,345.
  const std::vector<std::int32_t> w{32767};
  const std::vector<std::int32_t> x{65535};
  ASSERT_TRUE(igemm_fits_int32(32767, 65535, 1));
  const IgemmPanel panel =
      igemm_pack(w, 1, 1, IgemmForm::kWX, IgemmKernel::kScalar);
  const std::vector<float> scale{1.0f}, bias{0.0f};
  float got = 0.0f;
  IgemmOp op;
  op.form = IgemmForm::kWX;
  op.m = 1;
  op.n = 1;
  op.k = 1;
  op.panel = &panel;
  op.x = x.data();
  op.c = &got;
  op.epilogue = {scale.data(), bias.data()};
  op.accum = IgemmAccum::kInt32;
  op.x_bound = 65535;
  igemm_run(op);
  EXPECT_EQ(got, static_cast<float>(std::int64_t{32767} * 65535));
}

TEST(IgemmFitsInt32, WrapBeyondTheBoundIsWhyThePredicateGates) {
  // Two such products overflow int32.  The kernel never runs int32 past
  // the bound (that would be signed-overflow UB), so demonstrate the
  // wrap in well-defined unsigned arithmetic: the mod-2^32 sum
  // reinterpreted as int32 disagrees with the int64 truth.
  const std::int64_t term = std::int64_t{32767} * 65535;
  ASSERT_FALSE(igemm_fits_int32(32767, 65535, 2));
  const std::int64_t truth = 2 * term;
  const auto wrapped_bits =
      static_cast<std::uint32_t>(2 * static_cast<std::uint64_t>(term));
  const auto wrapped = static_cast<std::int32_t>(wrapped_bits);
  EXPECT_NE(static_cast<std::int64_t>(wrapped), truth);
  // The int64 path the predicate falls back to stays exact.
  const std::vector<std::int32_t> w{32767, 32767};
  const std::vector<std::int32_t> x{65535, 65535};
  const IgemmPanel panel =
      igemm_pack(w, 1, 2, IgemmForm::kWX, IgemmKernel::kScalar);
  const std::vector<float> scale{1.0f}, bias{0.0f};
  float got = 0.0f;
  IgemmOp op;
  op.form = IgemmForm::kWX;
  op.m = 1;
  op.n = 1;
  op.k = 2;
  op.panel = &panel;
  op.x = x.data();
  op.c = &got;
  op.epilogue = {scale.data(), bias.data()};
  op.accum = IgemmAccum::kInt64;
  op.x_bound = 65535;
  igemm_run(op);
  EXPECT_EQ(got, static_cast<float>(truth));
}

// ---- legacy panel packing ---------------------------------------------------

TEST(IgemmPackPanel, TransposeLaysOutColumnsAsRows) {
  const std::vector<std::int32_t> codes{1, 2, 3, 4, 5, 6};  // 2×3
  const auto flat = igemm_pack_panel(codes, 2, 3, false);
  EXPECT_EQ(flat, (std::vector<std::int16_t>{1, 2, 3, 4, 5, 6}));
  const auto t = igemm_pack_panel(codes, 2, 3, true);
  EXPECT_EQ(t, (std::vector<std::int16_t>{1, 4, 2, 5, 3, 6}));
}

TEST(IgemmPackPanel, RejectsCodesOutsideInt16) {
  std::vector<std::int32_t> codes{0, 1, 40000, 2};
  EXPECT_THROW(igemm_pack_panel(codes, 2, 2, false), Error);
  codes[2] = -40000;
  EXPECT_THROW(igemm_pack_panel(codes, 2, 2, true), Error);
  codes[2] = 32767;  // int16 max is fine
  EXPECT_NO_THROW(igemm_pack_panel(codes, 2, 2, false));
}

// ---- requant epilogue differential ------------------------------------------

/// The fused-datapath spec: every kernel's requant epilogue must equal a
/// naive int64 accumulation followed by `requant_apply` — same integer
/// associativity argument as the float epilogue, now in the multiplier
/// domain.  Sweeps u8 and i16 code inputs/outputs, per-row (kWX) and
/// per-column (kXW) channel mapping, kernels, threads and a k-splitting
/// blocking (the epilogue must fire only after the full reduction).
TEST(IgemmRequantEpilogue, MatchesNaiveRequantApplyAcrossKernels) {
  Rng rng(0xCC01);
  struct Cfg {
    std::size_t m, n, k;
    std::int32_t max_w, max_x, qmax;
  };
  const Cfg configs[] = {
      {8, 33, 27, 7, 3, 255},      // vec-packed-eligible bounds, u8 codes
      {6, 18, 40, 100, 255, 255},  // full 8-bit input grid, u8 codes
      {5, 21, 16, 40, 1000, 4095}, // 10-bit codes: i16 in, i16 out
  };
  for (const Cfg& cfg : configs) {
    std::vector<std::int32_t> w(cfg.m * cfg.k), x(cfg.k * cfg.n);
    for (auto& v : w) {
      v = static_cast<std::int32_t>(rng.uniform_int(2 * cfg.max_w + 1)) -
          cfg.max_w;
    }
    for (auto& v : x) {
      v = static_cast<std::int32_t>(rng.uniform_int(cfg.max_x + 1));
    }
    const bool u8_codes = cfg.max_x <= 255 && cfg.qmax <= 255;
    std::vector<std::uint8_t> x8(x.begin(), x.end());
    std::vector<std::int16_t> x16(x.begin(), x.end());

    // Realistic per-channel parameters straight from make_requant.
    const std::int64_t bound = std::int64_t{cfg.max_w} * cfg.max_x *
                               static_cast<std::int64_t>(cfg.k);
    std::vector<Requant> rq(cfg.m);
    for (auto& r : rq) {
      ASSERT_TRUE(hw::make_requant(rng.uniform(0.001, 0.05),
                                   rng.uniform(-3.0, 3.0), bound, r));
    }

    // Naive spec: exact int64 accumulation, then requant_apply.
    std::vector<std::int32_t> want(cfg.m * cfg.n);
    for (std::size_t i = 0; i < cfg.m; ++i) {
      for (std::size_t j = 0; j < cfg.n; ++j) {
        std::int64_t acc = 0;
        for (std::size_t p = 0; p < cfg.k; ++p) {
          acc += std::int64_t{w[i * cfg.k + p]} *
                 std::int64_t{x[p * cfg.n + j]};
        }
        want[i * cfg.n + j] = requant_apply(acc, rq[i], cfg.qmax);
      }
    }

    const std::int32_t max_abs = igemm_max_abs(w);
    std::vector<IgemmAccum> accums{IgemmAccum::kInt64};
    if (igemm_fits_int32(max_abs, cfg.max_x, cfg.k)) {
      accums.push_back(IgemmAccum::kInt32);
    }
    const IgemmBlocking blockings[] = {{}, {.nc = 8, .kc = 7}};
    for (IgemmAccum accum : accums) {
      for (IgemmKernel kernel : eligible_kernels(max_abs, cfg.max_x, accum)) {
        const IgemmPanel panel =
            igemm_pack(w, cfg.m, cfg.k, IgemmForm::kWX, kernel);
        for (const IgemmBlocking& blk : blockings) {
          for (std::size_t threads : {1, 2, 4}) {
            IgemmOp op;
            op.form = IgemmForm::kWX;
            op.m = cfg.m;
            op.n = cfg.n;
            op.k = cfg.k;
            op.panel = &panel;
            op.accum = accum;
            op.blocking = blk;
            op.x_bound = cfg.max_x;
            op.requant = rq.data();
            op.requant_qmax = cfg.qmax;
            std::vector<std::uint8_t> got8(cfg.m * cfg.n, 0xEE);
            std::vector<std::int16_t> got16(cfg.m * cfg.n, -7);
            if (u8_codes) {
              op.x8 = x8.data();
              op.out8 = got8.data();
            } else {
              op.x16 = x16.data();
              op.out16 = got16.data();
            }
            igemm_run(op, ctx_for(threads));
            for (std::size_t i = 0; i < want.size(); ++i) {
              const std::int32_t got =
                  u8_codes ? static_cast<std::int32_t>(got8[i])
                           : static_cast<std::int32_t>(got16[i]);
              ASSERT_EQ(got, want[i])
                  << "kWX kernel=" << igemm_kernel_str(kernel)
                  << " accum=" << static_cast<int>(accum)
                  << " threads=" << threads << " nc=" << blk.nc
                  << " kc=" << blk.kc << " idx=" << i;
            }
          }
        }
      }
    }
  }
}

/// kXW form (linear layers): activations on the left, requant entries
/// indexed by output column.
TEST(IgemmRequantEpilogue, PerColumnRequantMatchesNaiveInXwForm) {
  Rng rng(0xCC02);
  const std::size_t batch = 5, out = 9, k = 31;
  std::vector<std::int32_t> wt(k * out), x(batch * k);
  for (auto& v : wt) {
    v = static_cast<std::int32_t>(rng.uniform_int(31)) - 15;
  }
  for (auto& v : x) {
    v = static_cast<std::int32_t>(rng.uniform_int(256));
  }
  std::vector<std::uint8_t> x8(x.begin(), x.end());
  const std::int64_t bound = std::int64_t{15} * 255 * k;
  std::vector<Requant> rq(out);
  for (auto& r : rq) {
    ASSERT_TRUE(hw::make_requant(rng.uniform(0.001, 0.05),
                                 rng.uniform(-3.0, 3.0), bound, r));
  }
  std::vector<std::int32_t> want(batch * out);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < out; ++j) {
      std::int64_t acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += std::int64_t{x[i * k + p]} * std::int64_t{wt[p * out + j]};
      }
      want[i * out + j] = requant_apply(acc, rq[j], 255);
    }
  }
  // Pack via the kXW form: igemm_pack takes the weight as rows×depth.
  std::vector<std::int32_t> w_rows(out * k);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < out; ++j) {
      w_rows[j * k + p] = wt[p * out + j];
    }
  }
  const std::int32_t max_abs = igemm_max_abs(w_rows);
  for (IgemmKernel kernel : eligible_kernels(max_abs, 255, IgemmAccum::kInt32)) {
    const IgemmPanel panel = igemm_pack(w_rows, out, k, IgemmForm::kXW, kernel);
    IgemmOp op;
    op.form = IgemmForm::kXW;
    op.m = batch;
    op.n = out;
    op.k = k;
    op.panel = &panel;
    op.accum = IgemmAccum::kInt32;
    op.x_bound = 255;
    op.x8 = x8.data();
    op.requant = rq.data();
    op.requant_qmax = 255;
    std::vector<std::uint8_t> got(batch * out, 0xEE);
    op.out8 = got.data();
    igemm_run(op, ctx_for(2));
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(static_cast<std::int32_t>(got[i]), want[i])
          << "kXW kernel=" << igemm_kernel_str(kernel) << " idx=" << i;
    }
  }
}

}  // namespace
}  // namespace ccq
