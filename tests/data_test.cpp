// Tests for datasets, loaders, augmentation and the synthetic generators.
#include <gtest/gtest.h>

#include <set>

#include "ccq/data/synthetic.hpp"

namespace ccq::data {
namespace {

Tensor tiny_image(float fill) { return Tensor({1, 2, 2}, fill); }

TEST(DatasetTest, AddAndAccess) {
  Dataset ds(1, 2, 2, 3);
  ds.add(tiny_image(0.5f), 1);
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.label(0), 1);
  EXPECT_FLOAT_EQ(ds.image(0)(0, 0, 0), 0.5f);
}

TEST(DatasetTest, ValidatesShapeAndLabel) {
  Dataset ds(1, 2, 2, 3);
  EXPECT_THROW(ds.add(Tensor({1, 3, 3}), 0), Error);
  EXPECT_THROW(ds.add(tiny_image(0), 3), Error);
  EXPECT_THROW(ds.add(tiny_image(0), -1), Error);
  EXPECT_THROW(ds.image(0), Error);
}

TEST(DatasetTest, GatherAssemblesBatch) {
  Dataset ds(1, 2, 2, 3);
  ds.add(tiny_image(0.1f), 0);
  ds.add(tiny_image(0.2f), 1);
  ds.add(tiny_image(0.3f), 2);
  const Batch b = ds.gather({2, 0});
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.labels[0], 2);
  EXPECT_FLOAT_EQ(b.images(0, 0, 0, 0), 0.3f);
  EXPECT_FLOAT_EQ(b.images(1, 0, 0, 0), 0.1f);
}

TEST(DatasetTest, AllReturnsEverything) {
  Dataset ds(1, 2, 2, 2);
  ds.add(tiny_image(0), 0);
  ds.add(tiny_image(1), 1);
  EXPECT_EQ(ds.all().size(), 2u);
}

TEST(DatasetTest, TakeTailSplits) {
  Dataset ds(1, 2, 2, 2);
  for (int i = 0; i < 10; ++i) ds.add(tiny_image(static_cast<float>(i)), i % 2);
  Dataset tail = ds.take_tail(3);
  EXPECT_EQ(ds.size(), 7u);
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_FLOAT_EQ(tail.image(0)(0, 0, 0), 7.0f);
  EXPECT_THROW(ds.take_tail(100), Error);
}

TEST(DataLoaderTest, CoversEverySampleOncePerEpoch) {
  Dataset ds(1, 2, 2, 2);
  for (int i = 0; i < 10; ++i) ds.add(tiny_image(static_cast<float>(i)), 0);
  DataLoader loader(ds, 3, Augment{.horizontal_flip = false, .pad_crop = 0},
                    Rng(1));
  std::multiset<float> seen;
  Batch b;
  int batches = 0;
  while (loader.next(b)) {
    ++batches;
    for (std::size_t i = 0; i < b.size(); ++i) {
      seen.insert(b.images(i, 0, 0, 0));
    }
  }
  EXPECT_EQ(batches, 4);  // 3+3+3+1
  EXPECT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(seen.count(static_cast<float>(i)), 1u) << i;
  }
}

TEST(DataLoaderTest, BatchesPerEpoch) {
  Dataset ds(1, 2, 2, 2);
  for (int i = 0; i < 10; ++i) ds.add(tiny_image(0), 0);
  DataLoader loader(ds, 4, Augment{}, Rng(1));
  EXPECT_EQ(loader.batches_per_epoch(), 3u);
}

TEST(DataLoaderTest, ReshufflesBetweenEpochs) {
  Dataset ds(1, 2, 2, 2);
  for (int i = 0; i < 32; ++i) ds.add(tiny_image(static_cast<float>(i)), 0);
  DataLoader loader(ds, 32, Augment{.horizontal_flip = false, .pad_crop = 0},
                    Rng(2));
  Batch b1, b2;
  loader.next(b1);
  loader.start_epoch();
  loader.next(b2);
  // Same multiset of values but (with overwhelming probability) a
  // different order.
  bool different_order = false;
  for (std::size_t i = 0; i < 32; ++i) {
    if (b1.images(i, 0, 0, 0) != b2.images(i, 0, 0, 0)) {
      different_order = true;
      break;
    }
  }
  EXPECT_TRUE(different_order);
}

TEST(DataLoaderTest, DeterministicForSameSeed) {
  Dataset ds(1, 2, 2, 2);
  for (int i = 0; i < 16; ++i) ds.add(tiny_image(static_cast<float>(i)), 0);
  DataLoader a(ds, 4, Augment{}, Rng(7));
  DataLoader c(ds, 4, Augment{}, Rng(7));
  Batch ba, bc;
  while (a.next(ba)) {
    ASSERT_TRUE(c.next(bc));
    EXPECT_EQ(max_abs_diff(ba.images, bc.images), 0.0f);
  }
}

TEST(DataLoaderTest, AugmentationPreservesShapeAndRange) {
  Dataset ds = make_synthetic_cifar(4, 1, 16);
  DataLoader loader(ds, 8, Augment{.horizontal_flip = true, .pad_crop = 2},
                    Rng(3));
  Batch b;
  ASSERT_TRUE(loader.next(b));
  EXPECT_EQ(b.images.dim(2), 16u);
  EXPECT_EQ(b.images.dim(3), 16u);
  EXPECT_GE(b.images.min(), 0.0f);
  EXPECT_LE(b.images.max(), 1.0f);
}

TEST(SyntheticTest, GeneratesRequestedCounts) {
  Dataset ds = make_synthetic_cifar(5, 42, 16);
  EXPECT_EQ(ds.size(), 50u);
  EXPECT_EQ(ds.num_classes(), 10u);
  EXPECT_EQ(ds.channels(), 3u);
  EXPECT_EQ(ds.height(), 16u);
}

TEST(SyntheticTest, DeterministicForSeed) {
  Dataset a = make_synthetic_cifar(2, 7, 8);
  Dataset b = make_synthetic_cifar(2, 7, 8);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(max_abs_diff(a.image(i), b.image(i)), 0.0f);
    EXPECT_EQ(a.label(i), b.label(i));
  }
  Dataset c = make_synthetic_cifar(2, 8, 8);
  EXPECT_GT(max_abs_diff(a.image(0), c.image(0)), 0.0f);
}

TEST(SyntheticTest, ClassesInterleavedForBalancedSplits) {
  Dataset ds = make_synthetic_cifar(3, 1, 8);
  // Within each group of 10 consecutive samples every class appears once.
  for (std::size_t g = 0; g < 3; ++g) {
    std::set<int> labels;
    for (std::size_t i = 0; i < 10; ++i) labels.insert(ds.label(g * 10 + i));
    EXPECT_EQ(labels.size(), 10u);
  }
}

TEST(SyntheticTest, PixelsInUnitRange) {
  Dataset ds = make_synthetic_cifar(2, 3, 12);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds.image(i).min(), 0.0f);
    EXPECT_LE(ds.image(i).max(), 1.0f);
  }
}

TEST(SyntheticTest, ClassesAreVisuallyDistinct) {
  // Mean images of different classes should differ much more than two
  // different samples of the same class — the signal a classifier learns.
  SyntheticConfig config;
  config.num_classes = 4;
  config.samples_per_class = 12;
  config.height = config.width = 12;
  Dataset ds = make_synthetic_vision(config);
  std::vector<Tensor> mean(4, Tensor({3, 12, 12}));
  std::vector<int> counts(4, 0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    mean[static_cast<std::size_t>(ds.label(i))] += ds.image(i);
    ++counts[static_cast<std::size_t>(ds.label(i))];
  }
  for (int c = 0; c < 4; ++c) {
    mean[static_cast<std::size_t>(c)] *= 1.0f / static_cast<float>(counts[static_cast<std::size_t>(c)]);
  }
  float min_between = 1e9f;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      const Tensor diff = mean[static_cast<std::size_t>(a)] - mean[static_cast<std::size_t>(b)];
      min_between = std::min(min_between, diff.sqnorm());
    }
  }
  EXPECT_GT(min_between, 1.0f);
}

TEST(SyntheticTest, ImagenetVariantIsHarder) {
  Dataset easy = make_synthetic_cifar(2, 5, 8);
  Dataset hard = make_synthetic_imagenet(2, 5, 40, 8);
  EXPECT_EQ(hard.num_classes(), 40u);
  EXPECT_EQ(hard.size(), 80u);
  (void)easy;
}

TEST(SyntheticTest, RejectsEmptyConfig) {
  SyntheticConfig config;
  config.num_classes = 0;
  EXPECT_THROW(make_synthetic_vision(config), Error);
}

}  // namespace
}  // namespace ccq::data
