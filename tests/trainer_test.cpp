// Tests for the training/evaluation loops and parameter checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "ccq/core/trainer.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/simple.hpp"

namespace ccq::core {
namespace {

models::QuantModel tiny_model(std::uint64_t seed = 7) {
  models::ModelConfig config;
  config.num_classes = 4;
  config.image_size = 8;
  config.width_multiplier = 0.25f;
  config.seed = seed;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  return models::make_mlp(config, factory, quant::BitLadder({8, 4, 2}), 24);
}

data::Dataset tiny_data() {
  data::SyntheticConfig config;
  config.num_classes = 4;
  config.samples_per_class = 30;
  config.height = config.width = 8;
  config.seed = 11;
  return data::make_synthetic_vision(config);
}

TEST(EvaluateTest, RandomModelNearChance) {
  auto model = tiny_model();
  auto data = tiny_data();
  const EvalResult r = evaluate(model, data);
  EXPECT_GT(r.loss, 0.5f);
  EXPECT_LT(r.accuracy, 0.6f);
  EXPECT_GE(r.accuracy, 0.0f);
}

TEST(EvaluateTest, ChunkingDoesNotChangeResult) {
  auto model = tiny_model();
  auto data = tiny_data();
  const EvalResult a = evaluate(model, data, 16);
  const EvalResult b = evaluate(model, data, 1000);
  EXPECT_NEAR(a.loss, b.loss, 1e-4f);
  EXPECT_FLOAT_EQ(a.accuracy, b.accuracy);
}

TEST(EvaluateTest, RestoresTrainingMode) {
  auto model = tiny_model();
  auto data = tiny_data();
  model.set_training(true);
  evaluate(model, data);
  EXPECT_TRUE(model.net().training());
}

TEST(EvaluateTest, EmptyBatchThrows) {
  auto model = tiny_model();
  data::Batch empty;
  EXPECT_THROW(evaluate_batch(model, empty), Error);
}

TEST(TrainTest, LossDecreasesAndAccuracyRises) {
  auto model = tiny_model();
  auto train_set = tiny_data();
  auto val_set = train_set.take_tail(40);
  TrainConfig config;
  config.epochs = 12;
  config.batch_size = 16;
  config.sgd = {.lr = 0.05, .momentum = 0.9, .weight_decay = 1e-4};
  const auto stats = train(model, train_set, val_set, config);
  ASSERT_EQ(stats.size(), 12u);
  EXPECT_LT(stats.back().train_loss, stats.front().train_loss);
  EXPECT_GT(stats.back().val_accuracy, 0.5f);
}

TEST(TrainTest, ScheduleDrivesLr) {
  auto model = tiny_model();
  auto train_set = tiny_data();
  auto val_set = train_set.take_tail(20);
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 16;
  config.sgd.lr = 0.1;
  nn::StepDecayLr schedule(0.1, 1, 0.1);
  const auto stats = train(model, train_set, val_set, config, &schedule);
  // stats[i].lr is the rate the epoch *ran* with; the schedule output is
  // applied from the following epoch, so the decay shows one epoch later.
  EXPECT_DOUBLE_EQ(stats[0].lr, 0.1);
  EXPECT_DOUBLE_EQ(stats[1].lr, 0.1);
  EXPECT_NEAR(stats[2].lr, 0.01, 1e-12);
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  auto model = tiny_model(1);
  auto other = tiny_model(2);  // different init
  const std::string path = "/tmp/ccq_trainer_ckpt.bin";
  save_parameters(model, path);
  ASSERT_TRUE(load_parameters(other, path));
  auto pa = model.parameters();
  auto pb = other.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(max_abs_diff(pa[i]->value, pb[i]->value), 0.0f) << pa[i]->name;
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadMissingReturnsFalse) {
  auto model = tiny_model();
  EXPECT_FALSE(load_parameters(model, "/tmp/ccq_no_such_ckpt.bin"));
}

TEST(PretrainCachedTest, SecondCallLoadsInsteadOfTraining) {
  const std::string path = "/tmp/ccq_pretrain_cache_test.bin";
  std::remove(path.c_str());
  auto train_set = tiny_data();
  auto val_set = train_set.take_tail(20);
  TrainConfig config;
  config.epochs = 4;
  config.batch_size = 16;
  config.sgd.lr = 0.05;

  auto model1 = tiny_model();
  const EvalResult first = pretrain_cached(model1, train_set, val_set, config,
                                           path);
  ASSERT_TRUE(std::filesystem::exists(path));

  auto model2 = tiny_model();
  const EvalResult second = pretrain_cached(model2, train_set, val_set,
                                            config, path);
  EXPECT_FLOAT_EQ(first.accuracy, second.accuracy);
  // Loaded parameters match the trained ones exactly.
  auto p1 = model1.parameters();
  auto p2 = model2.parameters();
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(max_abs_diff(p1[i]->value, p2[i]->value), 0.0f);
  }
  std::remove(path.c_str());
}

TEST(PretrainCachedTest, EmptyPathSkipsCaching) {
  auto model = tiny_model();
  auto train_set = tiny_data();
  auto val_set = train_set.take_tail(20);
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  EXPECT_NO_THROW(pretrain_cached(model, train_set, val_set, config, ""));
}

}  // namespace
}  // namespace ccq::core
