// Deterministic scheduler tests for the serving SLA layer
// (serve/sla.hpp + the InferenceServer paths that consume it).
//
// Three tiers, all exact — no sleeps, no probabilistic assertions:
//
//   1. SlaQueue / deadline-arithmetic unit tests: shed order (lowest
//      class first, FIFO within a class), dequeue order (highest class
//      first), the expiry sweep, and the saturating relative→absolute
//      deadline conversion for hostile budgets.
//   2. A thread-free scheduler simulator over the *same* primitives the
//      server's worker loop uses (`SchedView`, `sla_flushable`,
//      `sla_next_event_ns`, `sla_prefer`, `SlaQueue`) driven on a
//      virtual clock: fair-share convergence for 1:1 and 1:4 weights
//      under saturating two-model load, starvation freedom of a quiet
//      model, and the combined mixed-priority acceptance scenario — no
//      high-priority request shed while lower-priority work is queued,
//      expired requests never occupy a batch slot, served shares within
//      10% of the configured weights.
//   3. InferenceServer integration under an injected virtual clock
//      (`ServeConfig::now_fn`, one worker): shed-lowest-first through
//      real submit futures, deadline expiry at dequeue (never at
//      admission), u64-max deadline saturation, plus the harness
//      offered/admitted accounting regression.
//
// Labelled `sla` and run under the TSan quick tier and both CI legs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "ccq/models/simple.hpp"
#include "ccq/serve/harness.hpp"

namespace ccq::serve {
namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

// ---- tier 1: queue + deadline primitives -----------------------------------

/// The minimal request shape SlaQueue needs (the server's
/// detail::Request carries the same three fields plus payload).
struct SimRequest {
  Priority priority = Priority::kNormal;
  std::uint64_t enqueue_ns = 0;
  std::uint64_t deadline_ns = 0;
  int id = 0;
};

SimRequest req(int id, Priority priority, std::uint64_t enqueue_ns = 0,
               std::uint64_t deadline_ns = 0) {
  return SimRequest{priority, enqueue_ns, deadline_ns, id};
}

TEST(SlaQueueTest, DequeuesHighestClassFirstFifoWithin) {
  SlaQueue<SimRequest> q;
  q.push(req(1, Priority::kLow));
  q.push(req(2, Priority::kNormal));
  q.push(req(3, Priority::kHigh));
  q.push(req(4, Priority::kNormal));
  q.push(req(5, Priority::kHigh));
  std::vector<int> order;
  while (!q.empty()) order.push_back(q.pop_front().id);
  EXPECT_EQ(order, (std::vector<int>{3, 5, 2, 4, 1}));
}

TEST(SlaQueueTest, ShedsLowestClassFirstFifoWithin) {
  SlaQueue<SimRequest> q;
  q.push(req(1, Priority::kNormal));
  q.push(req(2, Priority::kLow));
  q.push(req(3, Priority::kLow));
  q.push(req(4, Priority::kHigh));
  EXPECT_EQ(q.lowest(), Priority::kLow);
  EXPECT_EQ(q.shed_lowest().id, 2);  // oldest of the lowest class
  EXPECT_EQ(q.shed_lowest().id, 3);
  EXPECT_EQ(q.lowest(), Priority::kNormal);
  EXPECT_EQ(q.shed_lowest().id, 1);
  EXPECT_EQ(q.lowest(), Priority::kHigh);
  EXPECT_EQ(q.shed_lowest().id, 4);
  EXPECT_TRUE(q.empty());
}

TEST(SlaQueueTest, ExpireSweepsOnlyExpiredAcrossClasses) {
  SlaQueue<SimRequest> q;
  q.push(req(1, Priority::kLow, 0, 100));
  q.push(req(2, Priority::kLow, 0, 500));
  q.push(req(3, Priority::kHigh, 0, 150));
  q.push(req(4, Priority::kNormal, 0, 0));  // no deadline
  EXPECT_EQ(q.earliest_deadline_ns(), 100u);
  std::vector<int> dropped;
  q.expire(200, [&](SimRequest&& r) { dropped.push_back(r.id); });
  // Shed order: lowest class first, FIFO within.
  EXPECT_EQ(dropped, (std::vector<int>{1, 3}));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.earliest_deadline_ns(), 500u);
  dropped.clear();
  q.expire(kU64Max, [&](SimRequest&& r) { dropped.push_back(r.id); });
  EXPECT_EQ(dropped, (std::vector<int>{2}));  // id 4 has no deadline
  EXPECT_EQ(q.front().id, 4);
}

TEST(SlaQueueTest, OldestEnqueueSpansClasses) {
  SlaQueue<SimRequest> q;
  q.push(req(1, Priority::kHigh, 300));
  q.push(req(2, Priority::kLow, 100));
  q.push(req(3, Priority::kNormal, 200));
  EXPECT_EQ(q.oldest_enqueue_ns(), 100u);
  EXPECT_EQ(q.front().id, 1);  // dequeue order is by class, not age
}

TEST(DeadlineInstantTest, SaturatesHostileBudgets) {
  EXPECT_EQ(deadline_instant_ns(123, 0), 0u);  // 0 = no deadline
  EXPECT_EQ(deadline_instant_ns(0, 100), 100'000u);
  EXPECT_EQ(deadline_instant_ns(1'000, 100), 101'000u);
  // u64-max budget: the us→ns scale would wrap; must clamp, not wrap.
  EXPECT_EQ(deadline_instant_ns(0, kU64Max), kU64Max);
  EXPECT_EQ(deadline_instant_ns(kU64Max / 2, kU64Max), kU64Max);
  // The addition saturates too.
  EXPECT_EQ(deadline_instant_ns(kU64Max - 5, kU64Max / 1000), kU64Max);
  EXPECT_FALSE(deadline_expired(0, kU64Max));  // no deadline never expires
  EXPECT_TRUE(deadline_expired(100, 100));
  EXPECT_FALSE(deadline_expired(101, 100));
}

TEST(PriorityTest, NamesRoundTrip) {
  for (const Priority p :
       {Priority::kLow, Priority::kNormal, Priority::kHigh}) {
    EXPECT_EQ(priority_from_string(priority_name(p)), p);
  }
  EXPECT_THROW(priority_from_string("urgent"), Error);
}

// ---- tier 2: thread-free scheduler simulator -------------------------------

/// One simulated model: the same queue type and accounting the server's
/// LoadedModel carries, minus the network.
struct SimModel {
  SlaQueue<SimRequest> queue;
  double weight = 1.0;
  std::size_t capacity = 16;
  std::size_t max_batch = 4;
  std::uint64_t max_delay_ns = 1'000'000;
  double vtime = 0.0;
  std::size_t served = 0;
  std::vector<SimRequest> shed;
  std::vector<SimRequest> expired;
  std::vector<std::uint64_t> latency_ns;  // virtual enqueue→serve
};

/// The scheduler under test: admission + pick + flush, all on a virtual
/// clock, reproducing the exact decision code the server runs under its
/// mutex (sla.hpp free functions over SchedView).
struct SimScheduler {
  std::vector<SimModel*> models;
  std::uint64_t now = 0;
  double vclock = 0.0;
  std::uint64_t batch_cost_ns = 1'000;  ///< virtual service time per flush

  static SchedView view(const SimModel& m) {
    SchedView v;
    v.queued = m.queue.size();
    if (v.queued > 0) {
      v.oldest_ns = m.queue.oldest_enqueue_ns();
      v.earliest_deadline_ns = m.queue.earliest_deadline_ns();
    }
    v.max_batch = m.max_batch;
    v.max_delay_ns = m.max_delay_ns;
    v.vtime = m.vtime;
    return v;
  }

  /// The server's admission policy (submit()'s queue-full block).
  /// Returns false when rejected (QueueFullError's condition).
  bool admit(SimModel& m, SimRequest r) {
    r.enqueue_ns = now;
    if (m.queue.size() >= m.capacity) {
      if (m.queue.lowest() < r.priority) {
        m.shed.push_back(m.queue.shed_lowest());
      } else {
        return false;
      }
    }
    if (m.queue.empty()) m.vtime = std::max(m.vtime, vclock);
    m.queue.push(std::move(r));
    return true;
  }

  /// One worker turn: pick the fair-share winner among flushable
  /// models (advancing the clock to the next event when none is due),
  /// run the expiry sweep, take a batch, charge vtime.  Returns the
  /// flushed model, or nullptr when every queue is empty.
  SimModel* step() {
    for (;;) {
      SimModel* target = nullptr;
      SchedView target_view;
      for (SimModel* m : models) {
        const SchedView v = view(*m);
        if (!sla_flushable(v, now)) continue;
        if (!target || sla_prefer(v, target_view)) {
          target = m;
          target_view = v;
        }
      }
      if (target) {
        vclock = std::max(vclock, target->vtime);
        target->queue.expire(now, [&](SimRequest&& r) {
          target->expired.push_back(std::move(r));
        });
        std::size_t take = 0;
        while (take < target->max_batch && !target->queue.empty()) {
          SimRequest r = target->queue.pop_front();
          // The acceptance property: a request in a batch is never
          // expired at the instant the batch was composed.
          EXPECT_FALSE(deadline_expired(r.deadline_ns, now));
          target->latency_ns.push_back(now - r.enqueue_ns);
          ++take;
        }
        target->vtime += static_cast<double>(take) / target->weight;
        target->served += take;
        now += batch_cost_ns;
        return target;
      }
      // Nothing due: park until the earliest flush/deadline event —
      // the virtual analogue of the worker's wait_until.
      std::uint64_t earliest = kNoEventNs;
      for (SimModel* m : models) {
        earliest = std::min(earliest, sla_next_event_ns(view(*m)));
      }
      if (earliest == kNoEventNs) return nullptr;  // all queues empty
      now = std::max(now, earliest);
    }
  }
};

void expect_share_within(const SimModel& a, const SimModel& b,
                         double target_a_over_b, double tolerance) {
  ASSERT_GT(b.served, 0u);
  const double ratio =
      static_cast<double>(a.served) / static_cast<double>(b.served);
  EXPECT_NEAR(ratio, target_a_over_b, target_a_over_b * tolerance)
      << "served " << a.served << " vs " << b.served;
}

/// Keep a model saturated: top its queue back up to capacity.
void top_up(SimScheduler& sched, SimModel& m, Priority priority, int& next_id) {
  while (m.queue.size() < m.capacity) {
    ASSERT_TRUE(sched.admit(m, req(next_id++, priority)));
  }
}

TEST(FairShareTest, EqualWeightsConvergeToEqualShares) {
  SimModel a, b;
  SimScheduler sched;
  sched.models = {&a, &b};
  int id = 0;
  for (int round = 0; round < 400; ++round) {
    top_up(sched, a, Priority::kNormal, id);
    top_up(sched, b, Priority::kNormal, id);
    ASSERT_NE(sched.step(), nullptr);
  }
  expect_share_within(a, b, 1.0, 0.10);
}

TEST(FairShareTest, FourToOneWeightsConvergeToFourToOneShares) {
  SimModel a, b;
  a.weight = 4.0;
  b.weight = 1.0;
  SimScheduler sched;
  sched.models = {&a, &b};
  int id = 0;
  for (int round = 0; round < 500; ++round) {
    top_up(sched, a, Priority::kNormal, id);
    top_up(sched, b, Priority::kNormal, id);
    ASSERT_NE(sched.step(), nullptr);
  }
  expect_share_within(a, b, 4.0, 0.10);
}

TEST(FairShareTest, QuietModelNeverStarvesBehindHotOne) {
  SimModel hot, quiet;
  quiet.max_delay_ns = 500;  // age-triggered flush for single requests
  SimScheduler sched;
  sched.models = {&hot, &quiet};
  int id = 0;
  std::size_t quiet_sent = 0;
  for (int round = 0; round < 600; ++round) {
    top_up(sched, hot, Priority::kNormal, id);
    if (round % 25 == 0) {
      // One quiet request every 25 hot batches.
      ASSERT_TRUE(sched.admit(quiet, req(id++, Priority::kNormal)));
      ++quiet_sent;
    }
    ASSERT_NE(sched.step(), nullptr);
  }
  // Drain whatever quiet request is still queued.
  while (!quiet.queue.empty()) ASSERT_NE(sched.step(), nullptr);
  ASSERT_GE(quiet_sent, 20u);
  ASSERT_EQ(quiet.served, quiet_sent);
  // Starvation freedom, exactly: a quiet request waits at most its own
  // batching delay plus one hot batch already due ahead of it.  With a
  // factor-2 allowance for the idle→busy vclock rejoin, every quiet
  // latency (hence its p99) stays bounded — it never waits out the hot
  // backlog.
  const std::uint64_t bound = quiet.max_delay_ns + 2 * sched.batch_cost_ns;
  for (const std::uint64_t latency : quiet.latency_ns) {
    EXPECT_LE(latency, bound);
  }
}

TEST(FairShareTest, MixedPriorityAcceptanceScenario) {
  // The ISSUE acceptance criteria, asserted exactly under saturating
  // two-model mixed-priority load:
  //   * no high-priority request is shed while a lower-priority request
  //     is queued for the same model,
  //   * expired requests never occupy a batch slot (asserted inside
  //     SimScheduler::step),
  //   * each model's served share converges within 10% of its weight.
  SimModel a, b;
  a.weight = 4.0;
  b.weight = 1.0;
  a.capacity = b.capacity = 8;
  SimScheduler sched;
  sched.models = {&a, &b};
  int id = 0;
  std::size_t rejections = 0;
  for (int round = 0; round < 500; ++round) {
    for (SimModel* m : sched.models) {
      // Offer a saturating burst of mixed priorities; high-priority
      // requests carry a deadline two batch-times out, so on the model
      // that drains slowly (weight 1) some must expire while queued.
      for (int k = 0; k < 6; ++k) {
        const Priority pri = static_cast<Priority>(id % 3);
        SimRequest r = req(id, pri);
        if (pri == Priority::kHigh) {
          r.deadline_ns = sched.now + 2 * sched.batch_cost_ns;
        }
        ++id;
        const bool was_full = m->queue.size() >= m->capacity;
        const Priority lowest_queued =
            m->queue.empty() ? Priority::kHigh : m->queue.lowest();
        const std::size_t shed_before = m->shed.size();
        const bool admitted = sched.admit(*m, std::move(r));
        if (!admitted) {
          // Rejection is legal only when nothing queued ranks below the
          // incomer — the "no high shed while lower queued" contract
          // seen from the door.
          ASSERT_TRUE(was_full);
          EXPECT_GE(lowest_queued, pri);
          ++rejections;
        } else if (m->shed.size() > shed_before) {
          // An eviction must take the lowest class present, and only
          // for a strictly higher-priority incomer.
          EXPECT_EQ(m->shed.back().priority, lowest_queued);
          EXPECT_LT(m->shed.back().priority, pri);
        }
      }
    }
    ASSERT_NE(sched.step(), nullptr);
  }
  // The load was saturating: admission control and the expiry sweep
  // both actually engaged.
  EXPECT_GT(rejections, 0u);
  EXPECT_FALSE(a.shed.empty());
  EXPECT_GT(a.expired.size() + b.expired.size(), 0u);
  // No shed victim anywhere outranks any class that was ever queued
  // behind it: in particular, a high-priority victim is impossible while
  // the offered mix keeps lower classes arriving.
  for (const SimModel* m : sched.models) {
    for (const SimRequest& victim : m->shed) {
      EXPECT_LT(victim.priority, Priority::kHigh);
    }
  }
  expect_share_within(a, b, 4.0, 0.10);
}

// ---- tier 3: server integration under an injected clock --------------------

Tensor make_inputs(std::size_t n) {
  Tensor x({n, 3, 8, 8});
  auto data = x.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>((i * 2654435761u >> 8) & 255u) / 255.0f;
  }
  return x;
}

hw::IntegerNetwork make_network() {
  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4, 2}));
  quant::LayerRegistry& registry = model.registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    registry.set_ladder_pos(i, i % 3);
  }
  Workspace ws;
  model.set_training(true);
  model.forward(make_inputs(8), ws);
  model.set_training(false);
  return hw::IntegerNetwork::compile(model);
}

/// A server on a virtual clock: one worker, time advances only when the
/// test says so, flushes triggered by filling max_batch or by shutdown.
struct VirtualClockServer {
  std::atomic<std::uint64_t> now{1'000};
  InferenceServer server;

  explicit VirtualClockServer(std::size_t workers = 1)
      : server(make_config(workers)) {}

  ServeConfig make_config(std::size_t workers) {
    ServeConfig config;
    config.workers = workers;
    config.now_fn = [this] { return now.load(std::memory_order_relaxed); };
    return config;
  }
};

template <typename E>
bool fails_with(std::future<void>& f) {
  if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    return false;
  }
  try {
    f.get();
  } catch (const E&) {
    return true;
  } catch (...) {
  }
  return false;
}

TEST(ServeSlaTest, FullQueueShedsLowestFirstThroughFutures) {
  VirtualClockServer vs;
  ModelConfig mc;
  mc.queue_capacity = 2;
  mc.max_batch = 4;           // > capacity: nothing flushes on fill
  mc.max_delay_us = kU64Max;  // nothing flushes on age either
  const ModelHandle handle = vs.server.load("m", make_network(), mc);

  std::vector<Tensor> in;
  for (std::size_t i = 0; i < 6; ++i) {
    in.push_back(make_inputs(1).reshaped({3, 8, 8}));
  }
  std::vector<Tensor> out(6);

  SubmitOptions low;
  low.priority = Priority::kLow;
  SubmitOptions high;
  high.priority = Priority::kHigh;

  auto low_a = vs.server.submit(handle, in[0], out[0], low);
  auto low_b = vs.server.submit(handle, in[1], out[1], low);
  // Queue full of lows: a high incomer evicts the OLDEST low.
  auto high_c = vs.server.submit(handle, in[2], out[2], high);
  EXPECT_TRUE(fails_with<RequestShedError>(low_a));
  EXPECT_EQ(low_b.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  // …and the next high evicts the remaining low — FIFO within the class.
  auto high_d = vs.server.submit(handle, in[3], out[3], high);
  EXPECT_TRUE(fails_with<RequestShedError>(low_b));
  // Queue now holds two highs: a normal incomer cannot displace either…
  EXPECT_THROW(vs.server.submit(handle, in[4], out[4], SubmitOptions{}),
               QueueFullError);
  // …and an equal-priority high is rejected too (no same-class churn).
  EXPECT_THROW(vs.server.submit(handle, in[5], out[5], high), QueueFullError);

  // Drain: shutdown forces the flush; both admitted highs are served.
  vs.server.shutdown();
  EXPECT_NO_THROW(high_c.get());
  EXPECT_NO_THROW(high_d.get());
  EXPECT_EQ(out[2].dim(0), 5u);
  EXPECT_EQ(out[3].dim(0), 5u);
}

TEST(ServeSlaTest, DeadlineExpiresAtDequeueNeverAtAdmission) {
  VirtualClockServer vs;
  ModelConfig mc;
  mc.queue_capacity = 8;
  mc.max_batch = 2;           // the second submit triggers the flush
  mc.max_delay_us = kU64Max;  // age never triggers it
  const ModelHandle handle = vs.server.load("m", make_network(), mc);

  const Tensor sample_a = make_inputs(1).reshaped({3, 8, 8});
  const Tensor sample_b = make_inputs(1).reshaped({3, 8, 8});
  Tensor out_a, out_b;

  SubmitOptions tight;
  tight.deadline_us = 100;
  // Admission accepts the budget unconditionally — a relative deadline
  // cannot be expired at admission.
  std::future<void> reply_a;
  ASSERT_NO_THROW(reply_a = vs.server.submit(handle, sample_a, out_a, tight));

  // The budget expires while queued…
  vs.now += 1'000'000;  // 1 ms ≫ 100 us
  // …and the flush the second submit triggers drops it at dequeue time:
  // it never occupies a batch slot, and its future fails typed.
  std::future<void> reply_b =
      vs.server.submit(handle, sample_b, out_b, SubmitOptions{});
  vs.server.drain();
  try {
    reply_a.get();
    FAIL() << "expired request was served";
  } catch (const DeadlineExceededError& e) {
    EXPECT_NE(std::string(e.what()).find("missed its 100us deadline"),
              std::string::npos);
  }
  EXPECT_NO_THROW(reply_b.get());
  EXPECT_EQ(out_b.dim(0), 5u);

  // Same-instant dequeue is NOT a miss: the deadline bounds queueing
  // time that actually elapsed, and none has.
  Tensor out_c, out_d;
  std::future<void> reply_c = vs.server.submit(handle, sample_a, out_c, tight);
  std::future<void> reply_d =
      vs.server.submit(handle, sample_b, out_d, SubmitOptions{});
  vs.server.drain();
  EXPECT_NO_THROW(reply_c.get());
  EXPECT_NO_THROW(reply_d.get());
  vs.server.shutdown();
}

TEST(ServeSlaTest, MaxDeadlineSaturatesInsteadOfWrapping) {
  VirtualClockServer vs;
  ModelConfig mc;
  mc.queue_capacity = 8;
  mc.max_batch = 2;
  mc.max_delay_us = kU64Max;
  const ModelHandle handle = vs.server.load("m", make_network(), mc);

  const Tensor sample_a = make_inputs(1).reshaped({3, 8, 8});
  const Tensor sample_b = make_inputs(1).reshaped({3, 8, 8});
  Tensor out_a, out_b;
  SubmitOptions forever;
  forever.deadline_us = kU64Max;  // would wrap into the past if scaled
  std::future<void> reply_a =
      vs.server.submit(handle, sample_a, out_a, forever);
  vs.now += 1'000'000'000'000ull;  // ~17 virtual minutes queued
  std::future<void> reply_b =
      vs.server.submit(handle, sample_b, out_b, SubmitOptions{});
  vs.server.drain();
  EXPECT_NO_THROW(reply_a.get());
  EXPECT_NO_THROW(reply_b.get());
  vs.server.shutdown();
}

TEST(ServeSlaTest, WeightMustBePositiveAndFinite) {
  InferenceServer server;
  for (const double weight : {0.0, -1.0, std::nan("")}) {
    ModelConfig mc;
    mc.weight = weight;
    EXPECT_THROW(server.load("bad", make_network(), mc), Error);
  }
  EXPECT_THROW(server.resolve("bad"), ModelNotFoundError);
}

TEST(ServeSlaTest, DeadlineMissRateTriggersControllerDegrade) {
  OperatingPointPolicy policy;
  policy.degrade_depth = 1000;  // depth trigger inert
  policy.restore_depth = 0;
  policy.degrade_miss_rate = 0.25;
  OperatingPointController point(policy, 3, -1, -1, -1);
  // Window 1: 10 admitted, 1 miss (10% < 25%) — stays at rung 0.
  EXPECT_EQ(point.decide({0, 1'000, 10, 1}), 0u);
  // Window 2: 10 more admitted, 4 more misses (40% > 25%) — degrades.
  EXPECT_EQ(point.decide({0, 2'000, 20, 5}), 1u);
  // Window 3: clean — restores (depth 0 ≤ restore_depth).
  EXPECT_EQ(point.decide({0, 3'000, 30, 5}), 0u);
  // The two-arg overload keeps the miss trigger inert.
  EXPECT_EQ(point.decide(0, 4'000), 0u);
}

// ---- harness accounting regression (satellite fix) -------------------------

TEST(HarnessAccountingTest, OfferedCountsEveryAttemptClosedLoop) {
  InferenceServer server(ServeConfig{.workers = 2});
  ModelConfig mc;
  mc.max_batch = 4;
  mc.max_delay_us = 50;
  mc.queue_capacity = 2;  // tiny: retries are likely under 4 producers
  server.load("m", make_network(), mc);
  ServeHarness harness(server, "m");
  const Tensor x = make_inputs(32);
  const HarnessReport report = harness.run(x, {.producers = 4});
  // Every sample served, and the books balance: each retry was a fresh
  // offer, so offered = admitted + rejected exactly (the pre-fix code
  // lost the retry burst).
  EXPECT_EQ(report.requests, 32u);
  EXPECT_EQ(report.offered, report.admitted + report.rejected);
  EXPECT_GE(report.admitted, 32u);
  EXPECT_EQ(report.deadline_missed, 0u);
  server.shutdown();
}

TEST(HarnessAccountingTest, OpenLoopOffersEachSampleOnce) {
  InferenceServer server(ServeConfig{.workers = 2});
  ModelConfig mc;
  mc.max_batch = 8;
  mc.max_delay_us = 100;
  mc.queue_capacity = 4;
  server.load("m", make_network(), mc);
  ServeHarness harness(server, "m");
  const Tensor x = make_inputs(64);
  HarnessOptions options;
  options.producers = 2;
  options.offered_rps = 200'000.0;  // far beyond a 4-deep queue
  const HarnessReport report = harness.run(x, options);
  // The open loop never retries: one offer per sample, shed or served.
  EXPECT_EQ(report.offered, 64u);
  EXPECT_EQ(report.offered, report.admitted + report.rejected);
  EXPECT_EQ(report.requests + report.rejected + report.shed +
                report.deadline_missed,
            64u);
  server.shutdown();
}

TEST(HarnessAccountingTest, MixedPrioritiesReachTheServerPerSample) {
  VirtualClockServer vs;
  ModelConfig mc;
  mc.queue_capacity = 2;
  mc.max_batch = 4;
  mc.max_delay_us = kU64Max;
  const ModelHandle handle = vs.server.load("m", make_network(), mc);
  // Two lows queued through the submit path, then the harness offers a
  // single high-priority sample closed-loop: it must displace a low
  // (captured by the typed shed future), proving the per-sample
  // priority option reaches admission.
  const Tensor lows = make_inputs(2);
  Tensor in_a = make_inputs(1).reshaped({3, 8, 8});
  Tensor in_b = make_inputs(1).reshaped({3, 8, 8});
  Tensor out_a, out_b;
  SubmitOptions low;
  low.priority = Priority::kLow;
  auto low_a = vs.server.submit(handle, in_a, out_a, low);
  auto low_b = vs.server.submit(handle, in_b, out_b, low);

  ServeHarness harness(vs.server, "m");
  HarnessOptions options;
  options.priorities = {Priority::kHigh};
  HarnessReport report;
  std::thread driver(
      [&] { report = harness.run(make_inputs(1), options); });
  // The eviction happens synchronously inside the harness's submit.
  while (!fails_with<RequestShedError>(low_a)) {
    std::this_thread::yield();
  }
  vs.server.shutdown();  // force the flush; the high and low_b serve
  driver.join();
  EXPECT_EQ(report.requests, 1u);
  EXPECT_EQ(report.offered, report.admitted + report.rejected);
  EXPECT_NO_THROW(low_b.get());
}

}  // namespace
}  // namespace ccq::serve
