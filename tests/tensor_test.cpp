// Unit tests for the Tensor core: construction, arithmetic, reductions,
// reshape and serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "ccq/tensor/serialize.hpp"
#include "ccq/tensor/tensor.hpp"

namespace ccq {
namespace {

TEST(ShapeTest, NumelIsProductOfDims) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_numel({0, 5}), 0u);
}

TEST(ShapeTest, StrRendersBrackets) {
  EXPECT_EQ(shape_str({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_str({}), "[]");
}

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.rank(), 0u);
}

TEST(TensorTest, ZeroInitialised) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, FillConstructor) {
  Tensor t({4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorTest, FromValuesValidatesCount) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), Error);
}

TEST(TensorTest, InitializerListFactory) {
  Tensor t = Tensor::from({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(t(1), 2.0f);
}

TEST(TensorTest, RandnHasRequestedSpread) {
  Rng rng(5);
  Tensor t = Tensor::randn({10000}, rng, 2.0f);
  EXPECT_NEAR(t.mean(), 0.0f, 0.1f);
  EXPECT_NEAR(std::sqrt(t.sqnorm() / 10000.0f), 2.0f, 0.1f);
}

TEST(TensorTest, RandUniformInRange) {
  Rng rng(6);
  Tensor t = Tensor::rand_uniform({1000}, rng, -1.0f, 2.0f);
  EXPECT_GE(t.min(), -1.0f);
  EXPECT_LT(t.max(), 2.0f);
}

TEST(TensorTest, IndexingRoundTrips) {
  Tensor t({2, 3, 4, 5});
  t(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t(1, 2, 3, 4), 7.0f);
  const std::size_t flat = ((1 * 3 + 2) * 4 + 3) * 5 + 4;
  EXPECT_EQ(t.at(flat), 7.0f);
}

TEST(TensorTest, IndexingIsBoundsChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t(2, 0), Error);
  EXPECT_THROW(t(0, 2), Error);
  EXPECT_THROW(t.at(4), Error);
}

TEST(TensorTest, RankIsChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t(0), Error);          // rank-1 access on rank-2
  EXPECT_THROW(t(0, 0, 0), Error);    // rank-3 access on rank-2
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  Tensor sum = a + b;
  Tensor diff = b - a;
  Tensor prod = a * b;
  EXPECT_EQ(sum(1), 7.0f);
  EXPECT_EQ(diff(2), 3.0f);
  EXPECT_EQ(prod(0), 4.0f);
}

TEST(TensorTest, ScalarArithmetic) {
  Tensor a = Tensor::from({1, 2});
  a += 1.0f;
  a *= 2.0f;
  EXPECT_EQ(a(0), 4.0f);
  EXPECT_EQ(a(1), 6.0f);
  Tensor b = a * 0.5f;
  EXPECT_EQ(b(0), 2.0f);
  Tensor c = 2.0f * a;
  EXPECT_EQ(c(1), 12.0f);
}

TEST(TensorTest, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(a -= b, Error);
  EXPECT_THROW(a *= b, Error);
}

TEST(TensorTest, ApplyTransformsInPlace) {
  Tensor a = Tensor::from({-1, 2, -3});
  a.apply([](float v) { return v < 0 ? 0.0f : v; });
  EXPECT_EQ(a(0), 0.0f);
  EXPECT_EQ(a(1), 2.0f);
  EXPECT_EQ(a(2), 0.0f);
}

TEST(TensorTest, Reductions) {
  Tensor a = Tensor::from({1, -2, 3, 4});
  EXPECT_FLOAT_EQ(a.sum(), 6.0f);
  EXPECT_FLOAT_EQ(a.mean(), 1.5f);
  EXPECT_FLOAT_EQ(a.min(), -2.0f);
  EXPECT_FLOAT_EQ(a.max(), 4.0f);
  EXPECT_EQ(a.argmax(), 3u);
  EXPECT_FLOAT_EQ(a.sqnorm(), 1 + 4 + 9 + 16);
  EXPECT_FLOAT_EQ(a.abs_mean(), 2.5f);
}

TEST(TensorTest, ReductionsOnEmptyThrow) {
  Tensor t;
  EXPECT_THROW(t.mean(), Error);
  EXPECT_THROW(t.min(), Error);
  EXPECT_THROW(t.max(), Error);
  EXPECT_THROW(t.argmax(), Error);
}

TEST(TensorTest, HasNonfiniteDetectsNanAndInf) {
  Tensor a = Tensor::from({1, 2});
  EXPECT_FALSE(a.has_nonfinite());
  a(0) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(a.has_nonfinite());
  a(0) = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(a.has_nonfinite());
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor a = Tensor::from({1, 2, 3, 4, 5, 6});
  Tensor b = a.reshaped({2, 3});
  EXPECT_EQ(b(1, 0), 4.0f);
  EXPECT_THROW(a.reshaped({4, 2}), Error);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({1, 2.5f, 3});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
  Tensor c({2});
  EXPECT_THROW(max_abs_diff(a, c), Error);
}

TEST(TensorTest, StreamOutputMentionsShape) {
  Tensor a({2, 2});
  std::ostringstream os;
  os << a;
  EXPECT_NE(os.str().find("[2, 2]"), std::string::npos);
}

TEST(SerializeTest, TensorRoundTrip) {
  Rng rng(9);
  Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor back = read_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(max_abs_diff(back, t), 0.0f);
}

TEST(SerializeTest, RejectsBadMagic) {
  std::stringstream ss;
  ss << "JUNKJUNKJUNK";
  EXPECT_THROW(read_tensor(ss), Error);
}

TEST(SerializeTest, RejectsTruncatedStream) {
  Rng rng(9);
  Tensor t = Tensor::randn({100}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_tensor(truncated), Error);
}

TEST(SerializeTest, TensorMapRoundTripThroughFile) {
  Rng rng(10);
  TensorMap m;
  m.emplace("w1", Tensor::randn({4, 4}, rng));
  m.emplace("b1", Tensor::randn({4}, rng));
  const std::string path = "/tmp/ccq_serialize_test.bin";
  save_tensors(path, m);
  TensorMap back = load_tensors(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(max_abs_diff(back.at("w1"), m.at("w1")), 0.0f);
  EXPECT_EQ(max_abs_diff(back.at("b1"), m.at("b1")), 0.0f);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_tensors("/tmp/ccq_definitely_missing.bin"), Error);
}

}  // namespace
}  // namespace ccq
