// Theory-level property tests for the Hedge forecaster: on synthetic
// loss sequences the algorithm must concentrate on the best expert and
// keep its expected loss close to the best expert's (the no-regret
// guarantee the paper's competition stage inherits from online learning).
#include <gtest/gtest.h>

#include <cmath>

#include "ccq/core/hedge.hpp"

namespace ccq::core {
namespace {

std::vector<bool> all_awake(std::size_t n) { return std::vector<bool>(n, true); }

TEST(HedgeRegretTest, ConcentratesOnTheBestExpert) {
  // Expert losses: expert 2 always best.  After enough rounds almost all
  // probability mass must sit on it.
  HedgeCompetition h(4, 0.5);
  const double losses[4] = {1.0, 0.8, 0.1, 0.9};
  for (int round = 0; round < 200; ++round) {
    for (std::size_t m = 0; m < 4; ++m) h.update(m, losses[m]);
  }
  const auto p = h.probabilities(all_awake(4));
  EXPECT_GT(p[2], 0.999);
}

TEST(HedgeRegretTest, ExpectedLossApproachesBestExpert) {
  // Full-information Hedge on i.i.d. noisy losses: the time-averaged
  // expected loss under p must approach the best expert's mean.
  const std::size_t experts = 5;
  HedgeCompetition h(experts, 1.0);
  Rng rng(11);
  const double means[5] = {0.9, 0.7, 0.3, 0.6, 0.8};
  double algo_loss = 0.0;
  const int rounds = 500;
  for (int t = 0; t < rounds; ++t) {
    const auto p = h.probabilities(all_awake(experts));
    std::vector<double> losses(experts);
    for (std::size_t m = 0; m < experts; ++m) {
      losses[m] =
          std::clamp(means[m] + rng.normal(0.0, 0.05), 0.0, 1.5);
      algo_loss += p[m] * losses[m];
    }
    for (std::size_t m = 0; m < experts; ++m) h.update(m, losses[m]);
  }
  const double avg_algo = algo_loss / rounds;
  // Regret bound: avg regret ≤ ln(N)/(γT) + γ/8 → small here.
  EXPECT_LT(avg_algo, 0.3 + 0.05);
}

TEST(HedgeRegretTest, AdaptsWhenTheBestExpertChanges) {
  // Phase 1 favours expert 0; phase 2 favours expert 1.  The forecaster
  // must shift its mass (exponential forgetting through relative decay).
  HedgeCompetition h(2, 1.0);
  for (int t = 0; t < 40; ++t) {
    h.update(0, 0.1);
    h.update(1, 1.0);
  }
  EXPECT_GT(h.probabilities(all_awake(2))[0], 0.99);
  for (int t = 0; t < 90; ++t) {
    h.update(0, 1.0);
    h.update(1, 0.1);
  }
  EXPECT_GT(h.probabilities(all_awake(2))[1], 0.99);
}

TEST(HedgeRegretTest, SemiBanditSamplingStillFindsTheBestArm) {
  // The CCQ competition only observes the sampled layer's loss (lines
  // 7–9 of Algorithm 1).  Pure greedy sampling from p can starve unlucky
  // arms; the controller's Eq. 7 mixture keeps exploration alive — so
  // the simulation samples from the same λ-mixed distribution (uniform
  // memory shares act as an ε-greedy floor).
  HedgeCompetition h(6, 2.0);
  Rng rng(13);
  const double means[6] = {0.8, 0.7, 0.75, 0.2, 0.85, 0.6};
  const std::vector<double> uniform_share(6, 1.0 / 6.0);
  for (int t = 0; t < 600; ++t) {
    const auto p =
        h.memory_mixed_probabilities(all_awake(6), uniform_share, 0.25);
    const std::size_t m = HedgeCompetition::sample(p, rng);
    const double loss = std::clamp(means[m] + rng.normal(0.0, 0.1), 0.0, 2.0);
    h.update(m, loss);
  }
  const auto p = h.probabilities(all_awake(6));
  const std::size_t best =
      static_cast<std::size_t>(std::max_element(p.begin(), p.end()) -
                               p.begin());
  EXPECT_EQ(best, 3u);
}

TEST(HedgeRegretTest, MemoryMixKeepsExplorationAlive) {
  // Even when Hedge has collapsed onto one layer, a λ>0 memory mixture
  // keeps every awake layer reachable — CCQ's guarantee that big layers
  // cannot be starved.
  HedgeCompetition h(3, 5.0);
  for (int t = 0; t < 50; ++t) {
    h.update(0, 0.0);
    h.update(1, 2.0);
    h.update(2, 2.0);
  }
  const auto mixed = h.memory_mixed_probabilities(
      all_awake(3), {0.2, 0.3, 0.5}, 0.5);
  EXPECT_GT(mixed[1], 0.1);
  EXPECT_GT(mixed[2], 0.2);
}

}  // namespace
}  // namespace ccq::core
