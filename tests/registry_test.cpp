// Tests for the bit ladder and the layer registry (the CCQ controller's
// precision-state bookkeeping).
#include <gtest/gtest.h>

#include "ccq/quant/registry.hpp"

namespace ccq::quant {
namespace {

QuantUnit make_unit(const std::string& name, std::size_t weights,
                    std::shared_ptr<WeightQuantHook>* hook_out = nullptr) {
  QuantUnit unit;
  unit.name = name;
  auto hook = std::make_shared<MinMaxWeightHook>();
  if (hook_out != nullptr) *hook_out = hook;
  unit.weight_hook = std::move(hook);
  unit.weight_count = weights;
  unit.macs = weights * 10;
  return unit;
}

TEST(BitLadderTest, DefaultLadderMatchesPaper) {
  BitLadder ladder;
  EXPECT_EQ(ladder.initial_bits(), 8);
  EXPECT_EQ(ladder.final_bits(), 2);
  EXPECT_EQ(ladder.size(), 5u);
  EXPECT_EQ(ladder.str(), "8→6→4→3→2");
}

TEST(BitLadderTest, RejectsNonDecreasing) {
  EXPECT_THROW(BitLadder({4, 4}), Error);
  EXPECT_THROW(BitLadder({4, 8}), Error);
  EXPECT_THROW(BitLadder(std::vector<int>{}), Error);
  EXPECT_THROW(BitLadder({40, 4}), Error);
  EXPECT_THROW(BitLadder({4, 0}), Error);
}

TEST(BitLadderTest, PositionQueries) {
  BitLadder ladder({8, 4, 2});
  EXPECT_EQ(ladder.bits_at(1), 4);
  EXPECT_FALSE(ladder.is_last(1));
  EXPECT_TRUE(ladder.is_last(2));
  EXPECT_THROW(ladder.bits_at(3), Error);
}

TEST(RegistryTest, AddSetsInitialBits) {
  LayerRegistry reg(BitLadder({8, 4, 2}));
  reg.add(make_unit("a", 100));
  EXPECT_EQ(reg.bits_of(0), 8);
  EXPECT_EQ(reg.unit(0).ladder_pos, 0u);
}

TEST(RegistryTest, StartAtFpLeavesFullPrecision) {
  LayerRegistry reg(BitLadder({8, 4, 2}));
  reg.add(make_unit("a", 100), /*start_at_fp=*/true);
  EXPECT_EQ(reg.bits_of(0), 32);
}

TEST(RegistryTest, StepDownWalksLadder) {
  LayerRegistry reg(BitLadder({8, 4, 2}));
  reg.add(make_unit("a", 100));
  reg.step_down(0);
  EXPECT_EQ(reg.bits_of(0), 4);
  reg.step_down(0);
  EXPECT_EQ(reg.bits_of(0), 2);
  EXPECT_TRUE(reg.sleeping(0));
  EXPECT_THROW(reg.step_down(0), Error);
}

TEST(RegistryTest, SleepingDetection) {
  LayerRegistry reg(BitLadder({8, 4}));
  reg.add(make_unit("a", 10));
  reg.add(make_unit("b", 10));
  EXPECT_FALSE(reg.all_sleeping());
  reg.step_down(0);
  EXPECT_TRUE(reg.sleeping(0));
  EXPECT_FALSE(reg.all_sleeping());
  reg.step_down(1);
  EXPECT_TRUE(reg.all_sleeping());
}

TEST(RegistryTest, FrozenLayersSleepAndRejectMoves) {
  LayerRegistry reg(BitLadder({8, 4}));
  reg.add(make_unit("a", 10));
  reg.force_bits(0, 32);
  EXPECT_TRUE(reg.sleeping(0));
  EXPECT_EQ(reg.bits_of(0), 32);
  EXPECT_THROW(reg.set_ladder_pos(0, 1), Error);
  // set_all skips frozen layers silently.
  reg.add(make_unit("b", 10));
  reg.set_all(1);
  EXPECT_EQ(reg.bits_of(0), 32);
  EXPECT_EQ(reg.bits_of(1), 4);
}

TEST(RegistryTest, CompressionRatioMath) {
  LayerRegistry reg(BitLadder({8, 4, 2}));
  reg.add(make_unit("a", 100));
  reg.add(make_unit("b", 300));
  // All at 8 bits: 32/8 = 4×.
  EXPECT_DOUBLE_EQ(reg.compression_ratio(), 4.0);
  reg.set_ladder_pos(1, 2);  // b → 2 bits
  // (400·32) / (100·8 + 300·2) = 12800/1400.
  EXPECT_NEAR(reg.compression_ratio(), 12800.0 / 1400.0, 1e-9);
}

TEST(RegistryTest, MemorySharesReflectBitsAndSize) {
  LayerRegistry reg(BitLadder({8, 4}));
  reg.add(make_unit("small", 100));
  reg.add(make_unit("big", 300));
  auto shares = reg.memory_shares();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_NEAR(shares[0], 0.25, 1e-9);
  EXPECT_NEAR(shares[1], 0.75, 1e-9);
  // Quantizing the big layer shrinks its share.
  reg.set_ladder_pos(1, 1);
  shares = reg.memory_shares();
  EXPECT_NEAR(shares[1], 300.0 * 4 / (100.0 * 8 + 300.0 * 4), 1e-9);
}

TEST(RegistryTest, ProbeGuardRestoresState) {
  LayerRegistry reg(BitLadder({8, 4, 2}));
  reg.add(make_unit("a", 10));
  {
    LayerRegistry::ProbeGuard guard(reg, 0);
    EXPECT_EQ(reg.bits_of(0), 4);
  }
  EXPECT_EQ(reg.bits_of(0), 8);
  EXPECT_EQ(reg.unit(0).ladder_pos, 0u);
}

TEST(RegistryTest, ProbeGuardOnSleepingLayerThrows) {
  LayerRegistry reg(BitLadder({8, 4}));
  reg.add(make_unit("a", 10));
  reg.step_down(0);
  EXPECT_THROW(LayerRegistry::ProbeGuard(reg, 0), Error);
}

TEST(RegistryTest, BitsStringFormat) {
  LayerRegistry reg(BitLadder({8, 4}));
  reg.add(make_unit("a", 10));
  reg.add(make_unit("b", 10));
  reg.step_down(1);
  EXPECT_EQ(reg.bits_str(), "8,4");
}

TEST(RegistryTest, ActBitsFollowWeightBits) {
  LayerRegistry reg(BitLadder({8, 4}));
  auto act = std::make_unique<ClipActQuant>(1.0f);
  QuantUnit unit = make_unit("a", 10);
  unit.act = act.get();
  reg.add(std::move(unit));
  EXPECT_EQ(act->bits(), 8);
  reg.step_down(0);
  EXPECT_EQ(act->bits(), 4);
}

TEST(RegistryTest, ValidationErrors) {
  LayerRegistry reg(BitLadder({8, 4}));
  EXPECT_THROW(reg.unit(0), Error);
  QuantUnit bad;
  bad.weight_count = 10;
  EXPECT_THROW(reg.add(std::move(bad)), Error);  // no hook
  QuantUnit no_weights = make_unit("x", 1);
  no_weights.weight_count = 0;
  EXPECT_THROW(reg.add(std::move(no_weights)), Error);
  EXPECT_THROW(reg.compression_ratio(), Error);  // empty registry
}

TEST(RegistryTest, TotalWeights) {
  LayerRegistry reg(BitLadder({8, 4}));
  reg.add(make_unit("a", 100));
  reg.add(make_unit("b", 23));
  EXPECT_EQ(reg.total_weights(), 123u);
}

}  // namespace
}  // namespace ccq::quant
