// Tests for the Workspace buffer pool (common/workspace.hpp): bucket
// reuse and reset semantics, per-thread arena isolation under
// parallel_for, bit-identity of workspace-backed forwards/backwards with
// the legacy entry points at any thread count, and the steady-state
// zero-allocation guarantees (CCQ_COUNT_ALLOCS / alloc_stats).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "ccq/common/exec.hpp"
#include "ccq/common/workspace.hpp"
#include "ccq/core/trainer.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/resnet.hpp"
#include "ccq/nn/conv.hpp"
#include "ccq/nn/linear.hpp"

namespace ccq {
namespace {

/// True when the two tensors hold exactly the same bytes.
bool bit_identical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.numel() * sizeof(float)) == 0;
}

Tensor random_input(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(shape);
  for (auto& v : x.data()) {
    v = static_cast<float>(rng.uniform()) * 2.0f - 1.0f;
  }
  return x;
}

// ---- pool semantics ------------------------------------------------------

TEST(WorkspacePoolTest, AcquireReleaseReusesBucketedBuffer) {
  Workspace ws;
  FloatVec a = ws.acquire(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_GE(a.capacity(), 128u);  // full bucket capacity
  const float* ptr = a.data();
  ws.release(std::move(a));
  EXPECT_EQ(ws.pooled_buffers(), 1u);
  // Any request rounding to the same power-of-two bucket is served from
  // the pool, even at a different size.
  FloatVec b = ws.acquire(120);
  EXPECT_EQ(b.size(), 120u);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(ws.pooled_buffers(), 0u);
  ws.release(std::move(b));
}

TEST(WorkspacePoolTest, DistinctBucketsDoNotMix) {
  Workspace ws;
  ws.release(ws.acquire(64));    // bucket 6
  ws.release(ws.acquire(1000));  // bucket 10
  EXPECT_EQ(ws.pooled_buffers(), 2u);
  FloatVec small = ws.acquire(33);  // bucket 6 again
  EXPECT_GE(small.capacity(), 64u);
  EXPECT_LT(small.capacity(), 1000u);
  EXPECT_EQ(ws.pooled_buffers(), 1u);
  ws.release(std::move(small));
}

TEST(WorkspacePoolTest, ResetDropsFreeBuffersOnly) {
  Workspace ws;
  Tensor held = ws.tensor({4, 4});
  ws.release(ws.acquire(256));
  EXPECT_GT(ws.pooled_bytes(), 0u);
  ws.reset();
  EXPECT_EQ(ws.pooled_buffers(), 0u);
  EXPECT_EQ(ws.pooled_bytes(), 0u);
  // The outstanding tensor survives reset and can still be recycled.
  held.fill(3.0f);
  EXPECT_FLOAT_EQ(held.at(0), 3.0f);
  ws.recycle(std::move(held));
  EXPECT_EQ(ws.pooled_buffers(), 1u);
}

TEST(WorkspacePoolTest, TensorHelpersRoundTripThroughPool) {
  Workspace ws;
  Tensor z = ws.tensor({3, 5});
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);
  ws.recycle(std::move(z));
  Tensor u = ws.tensor_uninit({3, 5});
  EXPECT_EQ(u.numel(), 15u);
  EXPECT_EQ(ws.pooled_buffers(), 0u);  // reused the recycled buffer
  ws.recycle(std::move(u));
}

TEST(WorkspacePoolTest, FloatLeaseReturnsOnScopeExit) {
  Workspace ws;
  {
    Workspace::FloatLease lease = ws.floats(512);
    EXPECT_EQ(lease.size(), 512u);
    lease.data()[0] = 1.0f;
    EXPECT_EQ(ws.pooled_buffers(), 0u);
  }
  EXPECT_EQ(ws.pooled_buffers(), 1u);
}

TEST(WorkspacePoolTest, IntegerLeasesPoolPerElementTypeAndReturn) {
  // The igemm vector kernels lease int16/uint8 activation panels every
  // call — the same acquire-on-scope contract as floats, segregated per
  // element type so buffers never change interpretation.
  Workspace ws;
  const void* short_ptr = nullptr;
  const void* byte_ptr = nullptr;
  {
    Workspace::ShortLease s = ws.shorts(300);
    Workspace::ByteLease b = ws.bytes(700);
    EXPECT_EQ(s.size(), 300u);
    EXPECT_EQ(b.size(), 700u);
    short_ptr = s.data();
    byte_ptr = b.data();
    EXPECT_EQ(ws.pooled_buffers(), 0u);
  }
  EXPECT_EQ(ws.pooled_buffers(), 2u);
  {
    // Same buckets → the same buffers come back, warm.
    Workspace::ShortLease s = ws.shorts(280);
    Workspace::ByteLease b = ws.bytes(600);
    EXPECT_EQ(static_cast<const void*>(s.data()), short_ptr);
    EXPECT_EQ(static_cast<const void*>(b.data()), byte_ptr);
    EXPECT_EQ(ws.pooled_buffers(), 0u);
  }
  ws.reset();
  EXPECT_EQ(ws.pooled_buffers(), 0u);
}

TEST(WorkspacePoolTest, IntegerPoolStorageIsCacheLineAligned) {
  // alloc.hpp over-aligns the integer pools to 64 bytes so SIMD kernels
  // get split-free loads from the buffer base.
  Workspace ws;
  Workspace::IntLease i = ws.ints(17);
  Workspace::ShortLease s = ws.shorts(17);
  Workspace::ByteLease b = ws.bytes(17);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(i.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u);
}

// ---- per-thread arenas ---------------------------------------------------

TEST(WorkspaceArenaTest, ArenasAreThreadLocal) {
  Workspace ws;
  const float* worker_ptr = nullptr;
  std::thread worker([&] {
    FloatVec buf = ws.acquire(256);
    worker_ptr = buf.data();
    ws.release(std::move(buf));
  });
  worker.join();
  EXPECT_EQ(ws.pooled_buffers(), 1u);
  // The main thread must not be handed the worker's buffer: its own
  // arena is empty, so this acquire is a fresh allocation.
  FloatVec mine = ws.acquire(256);
  EXPECT_NE(mine.data(), worker_ptr);
  EXPECT_EQ(ws.pooled_buffers(), 1u);  // worker's buffer still pooled
  ws.release(std::move(mine));
  EXPECT_EQ(ws.pooled_buffers(), 2u);
}

TEST(WorkspaceArenaTest, ParallelWorkersNeverShareBuffers) {
  Workspace ws;
  ExecContext ctx(4);
  // Each chunk stamps its leased buffer with a chunk-unique pattern and
  // verifies it before releasing: crossed or shared buffers would tear.
  for (int round = 0; round < 8; ++round) {
    parallel_for(ctx, 16, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t c = lo; c < hi; ++c) {
        Workspace::FloatLease lease = ws.floats(1024);
        const float stamp = static_cast<float>(c + 1);
        for (std::size_t i = 0; i < lease.size(); ++i) {
          lease.data()[i] = stamp;
        }
        for (std::size_t i = 0; i < lease.size(); ++i) {
          ASSERT_EQ(lease.data()[i], stamp);
        }
      }
    });
  }
  // Reuse stayed thread-local: no more pooled buffers than pool threads.
  EXPECT_LE(ws.pooled_buffers(), ctx.threads());
}

// ---- bit-identity between the scratch pool and a local workspace ----------

TEST(WorkspaceBitIdentityTest, Conv2dForwardBackwardMatchLegacy) {
  Rng rng(5);
  nn::Conv2d conv(3, 8, 3, 1, 1, true, rng);
  const Tensor x = random_input({2, 3, 8, 8}, 21);
  const Tensor g = random_input({2, 8, 8, 8}, 22);

  const Tensor y_legacy = conv.forward(x, Workspace::scratch());
  for (auto* p : conv.parameters()) p->zero_grad();
  const Tensor gx_legacy = conv.backward(g, Workspace::scratch());

  Workspace ws;
  const Tensor y_ws = conv.forward(x, ws);
  for (auto* p : conv.parameters()) p->zero_grad();
  const Tensor gx_ws = conv.backward(g, ws);

  EXPECT_TRUE(bit_identical(y_legacy, y_ws));
  EXPECT_TRUE(bit_identical(gx_legacy, gx_ws));
}

TEST(WorkspaceBitIdentityTest, LinearForwardBackwardMatchLegacy) {
  Rng rng(6);
  nn::Linear fc(24, 10, true, rng);
  const Tensor x = random_input({4, 24}, 31);
  const Tensor g = random_input({4, 10}, 32);

  const Tensor y_legacy = fc.forward(x, Workspace::scratch());
  for (auto* p : fc.parameters()) p->zero_grad();
  const Tensor gx_legacy = fc.backward(g, Workspace::scratch());

  Workspace ws;
  const Tensor y_ws = fc.forward(x, ws);
  for (auto* p : fc.parameters()) p->zero_grad();
  const Tensor gx_ws = fc.backward(g, ws);

  EXPECT_TRUE(bit_identical(y_legacy, y_ws));
  EXPECT_TRUE(bit_identical(gx_legacy, gx_ws));
}

models::QuantModel tiny_resnet(std::uint64_t seed = 7) {
  models::ModelConfig config;
  config.num_classes = 10;
  config.image_size = 16;
  config.width_multiplier = 0.25f;
  config.seed = seed;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  return models::make_resnet20(config, factory, quant::BitLadder({8, 4, 2}));
}

TEST(WorkspaceBitIdentityTest, ResNetForwardMatchesAcrossThreadCounts) {
  const Tensor x = random_input({2, 3, 16, 16}, 41);
  auto model = tiny_resnet();
  model.set_training(false);

  const Tensor y_legacy = model.forward(x, Workspace::scratch());  // serial
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ExecContext ctx(threads);
    model.net().set_exec_context(&ctx);
    Workspace ws;
    Tensor y = model.forward(x, ws);
    EXPECT_TRUE(bit_identical(y_legacy, y)) << threads << " threads";
    ws.recycle(std::move(y));
  }
  model.net().set_exec_context(nullptr);
}

TEST(WorkspaceBitIdentityTest, ResNetTrainStepMatchesLegacy) {
  const Tensor x = random_input({2, 3, 16, 16}, 51);
  const Tensor g = random_input({2, 10}, 52);

  auto a = tiny_resnet();
  a.forward(x, Workspace::scratch());
  for (auto* p : a.parameters()) p->zero_grad();
  const Tensor gx_legacy = a.backward(g, Workspace::scratch());

  auto b = tiny_resnet();  // same seed -> identical parameters
  Workspace ws;
  Tensor y = b.forward(x, ws);
  ws.recycle(std::move(y));
  for (auto* p : b.parameters()) p->zero_grad();
  const Tensor gx_ws = b.backward(g, ws);

  EXPECT_TRUE(bit_identical(gx_legacy, gx_ws));
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(bit_identical(pa[i]->grad, pb[i]->grad)) << pa[i]->name;
  }
}

// ---- steady-state allocation regression ----------------------------------

TEST(WorkspaceAllocTest, CounterSeesTensorStorage) {
  if (!alloc_stats::enabled()) GTEST_SKIP() << "CCQ_COUNT_ALLOCS is off";
  alloc_stats::reset();
  Tensor t({16, 16});
  EXPECT_GE(alloc_stats::count(), 1u);
  EXPECT_GE(alloc_stats::bytes(), 16u * 16u * sizeof(float));
}

TEST(WorkspaceAllocTest, WarmEvalModeResNetForwardIsAllocationFree) {
  if (!alloc_stats::enabled()) GTEST_SKIP() << "CCQ_COUNT_ALLOCS is off";
  auto model = tiny_resnet();
  model.set_training(false);
  const Tensor x = random_input({2, 3, 16, 16}, 61);
  Workspace ws;
  // Warm-up populates the pool and every layer's capacity-reusing cache.
  ws.recycle(model.forward(x, ws));
  alloc_stats::reset();
  Tensor y = ws.tensor({1});  // pool miss allocates: counter is live
  EXPECT_GE(alloc_stats::count(), 1u);
  ws.recycle(std::move(y));

  alloc_stats::reset();
  Tensor warm = model.forward(x, ws);
  EXPECT_EQ(alloc_stats::count(), 0u)
      << "warm eval-mode forward must not touch the heap";
  ws.recycle(std::move(warm));
}

TEST(WorkspaceAllocTest, WarmEvaluateBatchIsAllocationFree) {
  if (!alloc_stats::enabled()) GTEST_SKIP() << "CCQ_COUNT_ALLOCS is off";
  auto model = tiny_resnet();
  data::SyntheticConfig dc;
  dc.num_classes = 10;
  dc.samples_per_class = 4;
  dc.height = dc.width = 16;
  dc.seed = 71;
  const data::Dataset dataset = data::make_synthetic_vision(dc);
  const data::Batch batch = dataset.all();

  Workspace ws;
  const core::EvalResult cold = core::evaluate_batch(model, batch, 16, ws);
  alloc_stats::reset();
  const core::EvalResult warm = core::evaluate_batch(model, batch, 16, ws);
  EXPECT_EQ(alloc_stats::count(), 0u)
      << "warm evaluate_batch must not touch the heap";
  EXPECT_FLOAT_EQ(cold.loss, warm.loss);
  EXPECT_FLOAT_EQ(cold.accuracy, warm.accuracy);
}

}  // namespace
}  // namespace ccq
