// Tests for the Adam optimizer and the warmup schedule.
#include <gtest/gtest.h>

#include <cmath>

#include "ccq/nn/linear.hpp"
#include "ccq/nn/optim.hpp"
#include "ccq/nn/schedule.hpp"

namespace ccq::nn {
namespace {

TEST(AdamTest, FirstStepMovesByLr) {
  // With bias correction, the very first Adam step size is ≈ lr·sign(g).
  Parameter p("w", Tensor::from({1.0f}));
  p.grad.at(0) = 0.3f;
  Adam opt({&p}, {.lr = 0.01});
  opt.step();
  EXPECT_NEAR(p.value.at(0), 1.0f - 0.01f, 1e-5f);
}

TEST(AdamTest, InvariantToGradientScale) {
  // Adam's update direction is scale-free: 10× larger gradients give the
  // same first step.
  Parameter a("a", Tensor::from({1.0f}));
  Parameter b("b", Tensor::from({1.0f}));
  a.grad.at(0) = 0.01f;
  b.grad.at(0) = 10.0f;
  Adam oa({&a}, {.lr = 0.05});
  Adam ob({&b}, {.lr = 0.05});
  oa.step();
  ob.step();
  EXPECT_NEAR(a.value.at(0), b.value.at(0), 1e-4f);
}

TEST(AdamTest, DecoupledWeightDecayShrinks) {
  Parameter p("w", Tensor::from({2.0f}));
  Adam opt({&p}, {.lr = 0.1, .weight_decay = 0.5});
  opt.step();  // zero gradient: only the decay term acts
  EXPECT_NEAR(p.value.at(0), 2.0f - 0.1f * 0.5f * 2.0f, 1e-5f);
}

TEST(AdamTest, RespectsPerParameterScales) {
  Parameter p("alpha", Tensor::from({1.0f}));
  p.lr_scale = 0.0f;  // completely frozen via scaling
  p.grad.at(0) = 5.0f;
  Adam opt({&p}, {.lr = 0.1});
  opt.step();
  EXPECT_FLOAT_EQ(p.value.at(0), 1.0f);
}

TEST(AdamTest, ConvergesOnLeastSquares) {
  Workspace ws;
  Rng rng(4);
  Linear fc(1, 1, true, rng);
  Adam opt(fc.parameters(), {.lr = 0.05});
  for (int it = 0; it < 400; ++it) {
    Tensor x = Tensor::rand_uniform({8, 1}, rng, -1.0f, 1.0f);
    Tensor y = fc.forward(x, ws);
    Tensor grad(y.shape());
    for (std::size_t i = 0; i < 8; ++i) {
      const float target = -1.5f * x(i, 0) + 0.5f;
      grad(i, 0) = (y(i, 0) - target) / 8.0f;
    }
    opt.zero_grad();
    fc.backward(grad, ws);
    opt.step();
  }
  EXPECT_NEAR(fc.weight().value(0, 0), -1.5f, 0.05f);
  EXPECT_NEAR(fc.bias().value.at(0), 0.5f, 0.05f);
}

TEST(AdamTest, ZeroGradClears) {
  Parameter p("w", Tensor::from({1.0f}));
  p.grad.at(0) = 9.0f;
  Adam opt({&p}, {});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.at(0), 0.0f);
}

TEST(WarmupTest, RampsLinearlyThenHolds) {
  WarmupLr schedule(0.1, 4);
  EXPECT_NEAR(schedule.next(0), 0.025, 1e-12);
  EXPECT_NEAR(schedule.next(0), 0.05, 1e-12);
  EXPECT_NEAR(schedule.next(0), 0.075, 1e-12);
  EXPECT_NEAR(schedule.next(0), 0.1, 1e-12);
  EXPECT_NEAR(schedule.next(0), 0.1, 1e-12);  // post-warmup hold
}

TEST(WarmupTest, DelegatesToInnerAfterWarmup) {
  StepDecayLr inner(0.1, 1, 0.5);
  WarmupLr schedule(0.1, 2, &inner);
  schedule.next(0);  // 0.05
  schedule.next(0);  // 0.1 — warmup done
  EXPECT_NEAR(schedule.next(0), 0.1, 1e-12);   // inner epoch 0
  EXPECT_NEAR(schedule.next(0), 0.05, 1e-12);  // inner epoch 1
}

TEST(WarmupTest, ResetRestartsRampAndInner) {
  StepDecayLr inner(0.2, 1, 0.1);
  WarmupLr schedule(0.2, 2, &inner);
  schedule.next(0);
  schedule.next(0);
  schedule.next(0);
  schedule.reset();
  EXPECT_NEAR(schedule.next(0), 0.1, 1e-12);  // ramp restarted
}

TEST(WarmupTest, ZeroWarmupIsPassThrough) {
  WarmupLr schedule(0.3, 0);
  EXPECT_NEAR(schedule.next(0), 0.3, 1e-12);
  EXPECT_THROW(WarmupLr(0.3, -1), Error);
}

}  // namespace
}  // namespace ccq::nn
