// Tests for the parallel execution subsystem (common/exec.hpp) and the
// determinism contract of the parallel kernels: results must be
// bit-identical for any thread count, exceptions must propagate out of
// parallel_for, and nested parallel_for must degrade to serial.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <tuple>
#include <utility>
#include <vector>

#include "ccq/common/exec.hpp"
#include "ccq/data/dataset.hpp"
#include "ccq/nn/conv.hpp"
#include "ccq/nn/linear.hpp"
#include "ccq/nn/loss.hpp"
#include "ccq/nn/optim.hpp"
#include "ccq/tensor/gemm.hpp"

namespace ccq {
namespace {

/// True when the two tensors hold exactly the same bytes.
bool bit_identical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.numel() * sizeof(float)) == 0;
}

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::vector<std::atomic<int>> hits(237);
  pool.run(hits.size(), [&](std::size_t c) { ++hits[c]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SurvivesBackToBackJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.run(16, [&](std::size_t c) { sum += static_cast<int>(c); });
    EXPECT_EQ(sum.load(), 120);
  }
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ExecContext ctx(4);
  std::vector<std::atomic<int>> hits(1001);
  parallel_for(ctx, hits.size(), 13, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SerialContextRunsInline) {
  ExecContext serial;
  EXPECT_EQ(serial.threads(), 1u);
  EXPECT_EQ(serial.pool(), nullptr);
  int calls = 0;
  parallel_for(serial, 100, 10, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);  // one body call covering the whole range
}

TEST(ParallelForTest, PropagatesExceptionAndStaysUsable) {
  ExecContext ctx(4);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(
      parallel_for(ctx, hits.size(), 1,
                   [&](std::size_t lo, std::size_t) {
                     ++hits[lo];
                     if (lo == 17) throw Error("boom");
                   }),
      Error);
  // All other chunks still ran (the pool drains rather than abandons).
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
  // And the pool accepts new work afterwards.
  std::atomic<int> sum{0};
  parallel_for(ctx, 10, 1, [&](std::size_t lo, std::size_t) {
    sum += static_cast<int>(lo);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelForTest, NestedCallFallsBackToSerial) {
  ExecContext ctx(4);
  std::atomic<int> inner_calls{0};
  std::atomic<int> total{0};
  parallel_for(ctx, 8, 1, [&](std::size_t lo, std::size_t hi) {
    EXPECT_TRUE(detail::in_parallel_region());
    // A nested parallel_for must run serially on this thread: a single
    // body invocation spanning the whole inner range, and no deadlock.
    parallel_for(ctx, 100, 10, [&](std::size_t ilo, std::size_t ihi) {
      ++inner_calls;
      EXPECT_EQ(ilo, 0u);
      EXPECT_EQ(ihi, 100u);
      total += static_cast<int>(ihi - ilo) * static_cast<int>(hi - lo);
    });
  });
  EXPECT_EQ(inner_calls.load(), 8);
  EXPECT_EQ(total.load(), 800);
  EXPECT_FALSE(detail::in_parallel_region());
}

TEST(ParallelReduceTest, MatchesSerialFoldAcrossThreadCounts) {
  std::vector<double> values(200000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.25 * static_cast<double>(i % 97) - 3.0;
  }
  auto chunk_sum = [&](std::size_t lo, std::size_t hi) {
    double part = 0.0;
    for (std::size_t i = lo; i < hi; ++i) part += values[i];
    return part;
  };
  auto add = [](double a, double b) { return a + b; };
  ExecContext serial;
  const double want =
      parallel_reduce(serial, values.size(), 4096, 0.0, chunk_sum, add);
  for (std::size_t threads : {2u, 4u, 8u}) {
    ExecContext ctx(threads);
    const double got =
        parallel_reduce(ctx, values.size(), 4096, 0.0, chunk_sum, add);
    EXPECT_EQ(want, got) << threads << " threads";
  }
}

TEST(DeterminismTest, GemmBitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  // Odd sizes straddle both the cache blocks (64/128/256) and the
  // 16-row partition grain.
  Tensor a = Tensor::randn({67, 131}, rng);
  Tensor b = Tensor::randn({131, 258}, rng);
  ExecContext serial;
  const Tensor want = matmul(a, b, serial);
  for (std::size_t threads : {2u, 4u}) {
    ExecContext ctx(threads);
    EXPECT_TRUE(bit_identical(want, matmul(a, b, ctx)))
        << threads << " threads";
  }
}

TEST(DeterminismTest, MatmulVariantsBitIdenticalAcrossThreadCounts) {
  Rng rng(12);
  Tensor at = Tensor::randn({131, 67}, rng);  // (k × m) for the TN path
  Tensor b = Tensor::randn({131, 97}, rng);
  Tensor x = Tensor::randn({67, 131}, rng);
  Tensor w = Tensor::randn({97, 131}, rng);  // (n × k) for the NT path
  ExecContext serial;
  const Tensor want_tn = matmul_tn(at, b, serial);
  const Tensor want_nt = matmul_nt(x, w, serial);
  for (std::size_t threads : {2u, 4u}) {
    ExecContext ctx(threads);
    EXPECT_TRUE(bit_identical(want_tn, matmul_tn(at, b, ctx)));
    EXPECT_TRUE(bit_identical(want_nt, matmul_nt(x, w, ctx)));
  }
}

TEST(DeterminismTest, TransposeFreeTnMatchesTransposePath) {
  // The blocked transpose-free kernel accumulates in the same order as
  // the historical transpose-then-gemm path, so it must agree bitwise.
  Rng rng(13);
  Tensor a = Tensor::randn({70, 33}, rng);
  Tensor b = Tensor::randn({70, 41}, rng);
  ExecContext serial;
  EXPECT_TRUE(
      bit_identical(matmul_tn(a, b, serial), matmul(transpose2d(a), b)));
}

TEST(DeterminismTest, ConvForwardBackwardBitIdenticalAcrossThreadCounts) {
  auto run = [](const ExecContext* ctx) {
    Workspace ws;
    Rng rng(21);
    nn::Conv2d conv(5, 7, 3, 1, 1, true, rng);
    conv.set_exec_context(ctx);
    Tensor x = Tensor::randn({6, 5, 9, 9}, rng);
    Tensor y = conv.forward(x, ws);
    Rng grng(22);
    Tensor gy = Tensor::randn(y.shape(), grng);
    Tensor gx = conv.backward(gy, ws);
    return std::tuple<Tensor, Tensor, Tensor>{
        std::move(y), std::move(gx), conv.weight().grad};
  };
  const auto [y1, gx1, gw1] = run(nullptr);  // process default (serial)
  for (std::size_t threads : {2u, 4u}) {
    ExecContext ctx(threads);
    const auto [y, gx, gw] = run(&ctx);
    EXPECT_TRUE(bit_identical(y1, y)) << threads << " threads";
    EXPECT_TRUE(bit_identical(gx1, gx)) << threads << " threads";
    EXPECT_TRUE(bit_identical(gw1, gw)) << threads << " threads";
  }
}

/// One conv→linear train step under the process-wide context; returns
/// the post-step parameter bytes.
std::vector<float> train_step_params(std::size_t threads) {
  ExecContext::set_global_threads(threads);
  Workspace ws;
  Rng rng(31);
  nn::Conv2d conv(3, 4, 3, 1, 1, true, rng);
  nn::Linear fc(4 * 8 * 8, 10, true, rng);
  Tensor x = Tensor::randn({8, 3, 8, 8}, rng);
  std::vector<int> labels;
  for (std::size_t i = 0; i < 8; ++i) labels.push_back(static_cast<int>(i % 10));

  std::vector<nn::Parameter*> params;
  conv.collect_parameters(params);
  fc.collect_parameters(params);
  nn::Sgd sgd(params, {.lr = 0.1, .momentum = 0.9, .weight_decay = 1e-4});

  Tensor h = conv.forward(x, ws);
  Tensor logits = fc.forward(h.reshaped({8, 4 * 8 * 8}), ws);
  nn::SoftmaxCrossEntropy loss;
  loss.forward(logits, labels);
  Tensor gh = fc.backward(loss.backward(), ws);
  conv.backward(gh.reshaped(h.shape()), ws);
  sgd.step();

  std::vector<float> out;
  for (const auto* p : params) {
    out.insert(out.end(), p->value.data().begin(), p->value.data().end());
  }
  ExecContext::set_global_threads(1);
  return out;
}

TEST(DeterminismTest, TrainStepBitIdenticalAcrossThreadCounts) {
  const std::vector<float> want = train_step_params(1);
  for (std::size_t threads : {2u, 4u}) {
    const std::vector<float> got = train_step_params(threads);
    ASSERT_EQ(want.size(), got.size());
    EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                             want.size() * sizeof(float)))
        << threads << " threads";
  }
}

TEST(DeterminismTest, DataLoaderBatchesBitIdenticalAcrossThreadCounts) {
  auto epoch = [](std::size_t threads) {
    ExecContext::set_global_threads(threads);
    Rng img_rng(41);
    data::Dataset set(3, 8, 8, 4);
    for (int i = 0; i < 37; ++i) {
      set.add(Tensor::rand_uniform({3, 8, 8}, img_rng, 0.0f, 1.0f), i % 4);
    }
    data::DataLoader loader(set, 8, data::Augment{}, Rng(7));
    std::vector<float> pixels;
    std::vector<int> labels;
    data::Batch batch;
    while (loader.next(batch)) {
      pixels.insert(pixels.end(), batch.images.data().begin(),
                    batch.images.data().end());
      labels.insert(labels.end(), batch.labels.begin(), batch.labels.end());
    }
    ExecContext::set_global_threads(1);
    return std::pair<std::vector<float>, std::vector<int>>{pixels, labels};
  };
  const auto [want_pixels, want_labels] = epoch(1);
  for (std::size_t threads : {2u, 4u}) {
    const auto [pixels, labels] = epoch(threads);
    EXPECT_EQ(want_labels, labels) << threads << " threads";
    ASSERT_EQ(want_pixels.size(), pixels.size());
    EXPECT_EQ(0, std::memcmp(want_pixels.data(), pixels.data(),
                             pixels.size() * sizeof(float)))
        << threads << " threads";
  }
}

TEST(ExecContextTest, GlobalDefaultIsConfigurable) {
  EXPECT_GE(ExecContext::global().threads(), 1u);
  ExecContext::set_global_threads(3);
  EXPECT_EQ(ExecContext::global().threads(), 3u);
  ExecContext::set_global_threads(0);  // clamped to 1
  EXPECT_EQ(ExecContext::global().threads(), 1u);
  EXPECT_EQ(ExecContext::global().pool(), nullptr);
}

}  // namespace
}  // namespace ccq
