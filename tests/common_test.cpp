// Unit tests for ccq::common — RNG, table printer, env helpers, errors.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "ccq/common/env.hpp"
#include "ccq/common/error.hpp"
#include "ccq/common/rng.hpp"
#include "ccq/common/table.hpp"

namespace ccq {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentred) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(RngTest, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalScalesByMeanStddev) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.03);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalRejectsDegenerateInput) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), Error);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), Error);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), Error);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  // The child stream should not replay the parent's next outputs.
  EXPECT_NE(child.next_u64(), a.next_u64());
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, RowWidthIsValidated) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableTest, CsvQuotesSpecialCharacters) {
  Table t({"name"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, FmtRendersFixedPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(10.0, 1), "10.0");
}

TEST(TableTest, SaveCsvWritesFile) {
  Table t({"x"});
  t.add_row({"1"});
  const std::string path = "/tmp/ccq_table_test.csv";
  ASSERT_TRUE(t.save_csv(path));
  std::remove(path.c_str());
}

TEST(EnvTest, IntFallsBackWhenUnset) {
  unsetenv("CCQ_TEST_UNSET_VAR");
  EXPECT_EQ(env_int("CCQ_TEST_UNSET_VAR", 5), 5);
}

TEST(EnvTest, IntParsesValue) {
  setenv("CCQ_TEST_INT_VAR", "42", 1);
  EXPECT_EQ(env_int("CCQ_TEST_INT_VAR", 5), 42);
  setenv("CCQ_TEST_INT_VAR", "not-a-number", 1);
  EXPECT_EQ(env_int("CCQ_TEST_INT_VAR", 5), 5);
  unsetenv("CCQ_TEST_INT_VAR");
}

TEST(EnvTest, StrFallsBackWhenUnset) {
  unsetenv("CCQ_TEST_STR_VAR");
  EXPECT_EQ(env_str("CCQ_TEST_STR_VAR", "fb"), "fb");
  setenv("CCQ_TEST_STR_VAR", "hello", 1);
  EXPECT_EQ(env_str("CCQ_TEST_STR_VAR", "fb"), "hello");
  unsetenv("CCQ_TEST_STR_VAR");
}

TEST(ErrorTest, CheckThrowsWithContext) {
  try {
    CCQ_CHECK(1 == 2, "my message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("my message"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) {
  EXPECT_NO_THROW(CCQ_CHECK(true));
}

}  // namespace
}  // namespace ccq
