// Tests for the CLI argument parser.
#include <gtest/gtest.h>

#include "ccq/common/args.hpp"
#include "ccq/common/error.hpp"

namespace ccq {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"ccq"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, CommandIsFirstBareToken) {
  const Args args = parse({"run", "--lr", "0.1"});
  EXPECT_EQ(args.command(), "run");
}

TEST(ArgsTest, NoCommandIsEmpty) {
  const Args args = parse({"--flag"});
  EXPECT_EQ(args.command(), "");
}

TEST(ArgsTest, KeyValuePairs) {
  const Args args = parse({"run", "--arch", "resnet20", "--width", "0.5"});
  EXPECT_EQ(args.get("arch", "x"), "resnet20");
  EXPECT_DOUBLE_EQ(args.get_double("width", 0.0), 0.5);
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
}

TEST(ArgsTest, IntParsingAndValidation) {
  const Args args = parse({"run", "--epochs", "12"});
  EXPECT_EQ(args.get_int("epochs", 0), 12);
  EXPECT_EQ(args.get_int("absent", 7), 7);
  const Args bad = parse({"run", "--epochs", "twelve"});
  EXPECT_THROW(bad.get_int("epochs", 0), Error);
}

TEST(ArgsTest, BareFlags) {
  const Args args = parse({"run", "--no-memory", "--gamma", "2"});
  EXPECT_TRUE(args.get_flag("no-memory"));
  EXPECT_FALSE(args.get_flag("memory"));
  EXPECT_EQ(args.get_int("gamma", 0), 2);
}

TEST(ArgsTest, IntListParsing) {
  const Args args = parse({"run", "--ladder", "8,4,2"});
  const auto ladder = args.get_int_list("ladder", {});
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_EQ(ladder[0], 8);
  EXPECT_EQ(ladder[2], 2);
  EXPECT_EQ(args.get_int_list("absent", {1, 2}).size(), 2u);
  const Args bad = parse({"run", "--ladder", "8,x,2"});
  EXPECT_THROW(bad.get_int_list("ladder", {}), Error);
}

TEST(ArgsTest, RejectsMalformedTokens) {
  EXPECT_THROW(parse({"run", "oops"}), Error);       // stray positional
  EXPECT_THROW(parse({"run", "--", "v"}), Error);    // empty flag name
}

TEST(ArgsTest, UnusedTracksUnqueriedKeys) {
  const Args args = parse({"run", "--used", "1", "--typo", "2"});
  args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ArgsTest, NegativeNumbersAreNotFlags) {
  // A value starting with '-' is currently treated as the next flag —
  // the documented limitation: negative values must be passed as e.g.
  // --lambda-end 0 (all ccq flags are non-negative).  Pin the behaviour.
  const Args args = parse({"run", "--a", "--b", "3"});
  EXPECT_TRUE(args.has("a"));
  EXPECT_EQ(args.get("a", "?"), "");
  EXPECT_EQ(args.get_int("b", 0), 3);
}

}  // namespace
}  // namespace ccq
