// Tests for the JSON report writer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "ccq/common/error.hpp"
#include "ccq/common/json.hpp"

namespace ccq {
namespace {

TEST(JsonTest, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(-1), "null");
  EXPECT_EQ(Json(true).dump(-1), "true");
  EXPECT_EQ(Json(false).dump(-1), "false");
  EXPECT_EQ(Json(42).dump(-1), "42");
  EXPECT_EQ(Json(3.5).dump(-1), "3.5");
  EXPECT_EQ(Json("hi").dump(-1), "\"hi\"");
}

TEST(JsonTest, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::nan("")).dump(-1), "null");
  EXPECT_EQ(Json(1.0 / 0.0).dump(-1), "null");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(-1), "\"a\\\"b\"");
  EXPECT_EQ(Json("line\nbreak").dump(-1), "\"line\\nbreak\"");
  EXPECT_EQ(Json("back\\slash").dump(-1), "\"back\\\\slash\"");
}

TEST(JsonTest, ArraysCompact) {
  Json a = Json::array();
  a.push_back(1);
  a.push_back("two");
  a.push_back(Json::array());
  EXPECT_EQ(a.dump(-1), "[1,\"two\",[]]");
  EXPECT_EQ(a.size(), 3u);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json o = Json::object();
  o.set("zulu", 1);
  o.set("alpha", 2);
  EXPECT_EQ(o.dump(-1), "{\"zulu\":1,\"alpha\":2}");
}

TEST(JsonTest, SetOverwritesExistingKey) {
  Json o = Json::object();
  o.set("k", 1);
  o.set("k", 2);
  EXPECT_EQ(o.dump(-1), "{\"k\":2}");
  EXPECT_EQ(o.size(), 1u);
}

TEST(JsonTest, IndexOperatorAutoCreates) {
  Json o = Json::object();
  o["nested"]["value"] = Json(7);
  EXPECT_EQ(o.dump(-1), "{\"nested\":{\"value\":7}}");
}

TEST(JsonTest, PrettyPrintingIndents) {
  Json o = Json::object();
  o.set("a", 1);
  const std::string pretty = o.dump(2);
  EXPECT_NE(pretty.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(JsonTest, TypeErrorsThrow) {
  Json scalar(1);
  EXPECT_THROW(scalar.push_back(2), Error);
  EXPECT_THROW(scalar.set("k", 2), Error);
  Json arr = Json::array();
  EXPECT_THROW(arr["k"], Error);
}

TEST(JsonTest, SaveWritesFile) {
  Json o = Json::object();
  o.set("ok", true);
  const std::string path = "/tmp/ccq_json_test.json";
  ASSERT_TRUE(o.save(path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"ok\": true"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JsonTest, LargeIntegersStayExact) {
  EXPECT_EQ(Json(1000000).dump(-1), "1000000");
  EXPECT_EQ(Json(static_cast<std::size_t>(123456789)).dump(-1), "123456789");
}

}  // namespace
}  // namespace ccq
