// Tests for the JSON report writer and reader.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "ccq/common/error.hpp"
#include "ccq/common/json.hpp"

namespace ccq {
namespace {

TEST(JsonTest, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(-1), "null");
  EXPECT_EQ(Json(true).dump(-1), "true");
  EXPECT_EQ(Json(false).dump(-1), "false");
  EXPECT_EQ(Json(42).dump(-1), "42");
  EXPECT_EQ(Json(3.5).dump(-1), "3.5");
  EXPECT_EQ(Json("hi").dump(-1), "\"hi\"");
}

TEST(JsonTest, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::nan("")).dump(-1), "null");
  EXPECT_EQ(Json(1.0 / 0.0).dump(-1), "null");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(-1), "\"a\\\"b\"");
  EXPECT_EQ(Json("line\nbreak").dump(-1), "\"line\\nbreak\"");
  EXPECT_EQ(Json("back\\slash").dump(-1), "\"back\\\\slash\"");
}

TEST(JsonTest, ArraysCompact) {
  Json a = Json::array();
  a.push_back(1);
  a.push_back("two");
  a.push_back(Json::array());
  EXPECT_EQ(a.dump(-1), "[1,\"two\",[]]");
  EXPECT_EQ(a.size(), 3u);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json o = Json::object();
  o.set("zulu", 1);
  o.set("alpha", 2);
  EXPECT_EQ(o.dump(-1), "{\"zulu\":1,\"alpha\":2}");
}

TEST(JsonTest, SetOverwritesExistingKey) {
  Json o = Json::object();
  o.set("k", 1);
  o.set("k", 2);
  EXPECT_EQ(o.dump(-1), "{\"k\":2}");
  EXPECT_EQ(o.size(), 1u);
}

TEST(JsonTest, IndexOperatorAutoCreates) {
  Json o = Json::object();
  o["nested"]["value"] = Json(7);
  EXPECT_EQ(o.dump(-1), "{\"nested\":{\"value\":7}}");
}

TEST(JsonTest, PrettyPrintingIndents) {
  Json o = Json::object();
  o.set("a", 1);
  const std::string pretty = o.dump(2);
  EXPECT_NE(pretty.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(JsonTest, TypeErrorsThrow) {
  Json scalar(1);
  EXPECT_THROW(scalar.push_back(2), Error);
  EXPECT_THROW(scalar.set("k", 2), Error);
  Json arr = Json::array();
  EXPECT_THROW(arr["k"], Error);
}

TEST(JsonTest, SaveWritesFile) {
  Json o = Json::object();
  o.set("ok", true);
  const std::string path = "/tmp/ccq_json_test.json";
  ASSERT_TRUE(o.save(path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"ok\": true"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JsonTest, LargeIntegersStayExact) {
  EXPECT_EQ(Json(1000000).dump(-1), "1000000");
  EXPECT_EQ(Json(static_cast<std::size_t>(123456789)).dump(-1), "123456789");
}

// ---- parser ----------------------------------------------------------------

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_EQ(Json::parse("42").as_double(), 42.0);
  EXPECT_EQ(Json::parse("-3.5e2").as_double(), -350.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(Json::parse("\"a\\\"b\"").as_string(), "a\"b");
  EXPECT_EQ(Json::parse("\"line\\nbreak\"").as_string(), "line\nbreak");
  EXPECT_EQ(Json::parse("\"tab\\there\"").as_string(), "tab\there");
  // \u00e9 is é (U+00E9) encoded as two UTF-8 bytes.
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(JsonParseTest, NestedContainers) {
  const Json v = Json::parse(R"({"a":[1,2,{"b":true}],"c":"x"})");
  EXPECT_EQ(v.at("a").size(), 3u);
  EXPECT_EQ(v.at("a").at(1).as_double(), 2.0);
  EXPECT_TRUE(v.at("a").at(2).at("b").as_bool());
  EXPECT_EQ(v.at("c").as_string(), "x");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("missing"));
}

TEST(JsonParseTest, RoundTripsItsOwnOutput) {
  Json o = Json::object();
  o.set("name", "probe");
  o.set("loss", 2.25);
  Json arr = Json::array();
  arr.push_back(0.5);
  arr.push_back(0.25);
  o.set("probs", std::move(arr));
  const Json back = Json::parse(o.dump(-1));
  EXPECT_EQ(back.at("name").as_string(), "probe");
  EXPECT_EQ(back.at("loss").as_double(), 2.25);
  EXPECT_EQ(back.at("probs").at(0).as_double(), 0.5);
  EXPECT_EQ(back.dump(-1), o.dump(-1));
}

TEST(JsonParseTest, MalformedInputThrows) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), Error);
  EXPECT_THROW(Json::parse("1 trailing"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("nul"), Error);
}

TEST(JsonParseTest, AccessorTypeMismatchesThrow) {
  const Json v = Json::parse("{\"a\":1}");
  EXPECT_THROW(v.at("a").as_string(), Error);
  EXPECT_THROW(v.at("missing"), Error);
  EXPECT_THROW(v.at(std::size_t{0}), Error);
  EXPECT_THROW(Json::parse("[1]").at("key"), Error);
}

}  // namespace
}  // namespace ccq
