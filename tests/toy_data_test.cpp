// Tests for the toy datasets (two spirals, Gaussian blobs).
#include <gtest/gtest.h>

#include <cmath>

#include "ccq/core/trainer.hpp"
#include "ccq/data/toy.hpp"
#include "ccq/models/simple.hpp"

namespace ccq::data {
namespace {

TEST(TwoSpiralsTest, GeneratesBalancedClasses) {
  Dataset ds = make_two_spirals(50);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.num_classes(), 2u);
  int count0 = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.label(i) == 0) ++count0;
  }
  EXPECT_EQ(count0, 50);
}

TEST(TwoSpiralsTest, PointsStayNearUnitBox) {
  Dataset ds = make_two_spirals(100, 0.02f);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GT(ds.image(i).min(), -0.3f);
    EXPECT_LT(ds.image(i).max(), 1.3f);
  }
}

TEST(TwoSpiralsTest, DeterministicPerSeed) {
  Dataset a = make_two_spirals(20, 0.05f, 5);
  Dataset b = make_two_spirals(20, 0.05f, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(max_abs_diff(a.image(i), b.image(i)), 0.0f);
  }
}

TEST(TwoSpiralsTest, CentroidsCoincideSoTaskIsNonlinear) {
  // Spirals wind around each other: per-class centroids nearly coincide,
  // the defining "not linearly separable" property of this benchmark.
  Dataset train = make_two_spirals(120, 0.03f, 6);
  Tensor mean0({1, 1, 2}), mean1({1, 1, 2});
  int n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    if (train.label(i) == 0) {
      mean0 += train.image(i);
      ++n0;
    } else {
      mean1 += train.image(i);
      ++n1;
    }
  }
  mean0 *= 1.0f / static_cast<float>(n0);
  mean1 *= 1.0f / static_cast<float>(n1);
  const Tensor diff = mean0 - mean1;
  EXPECT_LT(std::sqrt(diff.sqnorm()), 0.2f);
}

TEST(GaussianBlobsTest, ShapesAndDeterminism) {
  Dataset ds = make_gaussian_blobs(3, 20, 5, 0.1f, 7);
  EXPECT_EQ(ds.size(), 60u);
  EXPECT_EQ(ds.width(), 5u);
  EXPECT_EQ(ds.num_classes(), 3u);
  Dataset ds2 = make_gaussian_blobs(3, 20, 5, 0.1f, 7);
  EXPECT_EQ(max_abs_diff(ds.image(0), ds2.image(0)), 0.0f);
}

TEST(GaussianBlobsTest, TightBlobsAreCentroidSeparable) {
  Dataset ds = make_gaussian_blobs(4, 40, 8, 0.03f, 11);
  // Nearest-centroid classification should be nearly perfect at this
  // spread — verifies the blobs are genuinely clustered by label.
  std::vector<Tensor> centroid(4, Tensor({1, 1, 8}));
  std::vector<int> counts(4, 0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    centroid[static_cast<std::size_t>(ds.label(i))] += ds.image(i);
    ++counts[static_cast<std::size_t>(ds.label(i))];
  }
  for (int c = 0; c < 4; ++c) {
    centroid[static_cast<std::size_t>(c)] *=
        1.0f / static_cast<float>(counts[static_cast<std::size_t>(c)]);
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    float best = 1e30f;
    int best_c = -1;
    for (int c = 0; c < 4; ++c) {
      const Tensor diff = ds.image(i) - centroid[static_cast<std::size_t>(c)];
      if (diff.sqnorm() < best) {
        best = diff.sqnorm();
        best_c = c;
      }
    }
    if (best_c == ds.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(ds.size()),
            0.95);
}

TEST(ToyDataTest, ValidatesArguments) {
  EXPECT_THROW(make_two_spirals(0), Error);
  EXPECT_THROW(make_gaussian_blobs(0, 10, 2), Error);
  EXPECT_THROW(make_gaussian_blobs(2, 0, 2), Error);
  EXPECT_THROW(make_gaussian_blobs(2, 10, 0), Error);
}

}  // namespace
}  // namespace ccq::data
