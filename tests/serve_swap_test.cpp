// Hot-swap correctness for the registry-routed server.
//
// The contract under test (ISSUE 8 tentpole): publishing v2 of a name
// under live traffic is an atomic cutover — requests admitted against
// v1 finish on v1's network bit-identically, requests admitted after
// the publish are served by v2 bit-identically, and across the cutover
// nothing is lost, rejected or double-served.  `HarnessReport::versions`
// records which version served each sample, so bit-identity is asserted
// *per admitted version*, not just per sample.
//
// PR 10 adds the SLA interaction: a mid-traffic swap under saturating
// mixed-priority load must keep the admission guarantee — high-priority
// traffic is never shed while lower-priority work is queued, on either
// side of the cutover.
//
// Labelled `serve` and run under the TSan quick tier
// (`CCQ_THREADS=4 ctest -L "parallel|telemetry|serve|igemm|engine|adaptive|sla"`).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ccq/common/telemetry.hpp"
#include "ccq/models/simple.hpp"
#include "ccq/serve/harness.hpp"

namespace ccq::serve {
namespace {

Tensor make_inputs(std::size_t n) {
  Tensor x({n, 3, 8, 8});
  auto data = x.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>((i * 2654435761u >> 8) & 255u) / 255.0f;
  }
  return x;
}

/// A calibrated SimpleCNN whose layer i sits at ladder position
/// i mod `stride` of an 8/4/2 ladder.  Different strides give genuinely
/// different integer networks over the same input/output shapes — the
/// raw material for v1-vs-v2 swap tests.
hw::IntegerNetwork make_network(std::size_t stride) {
  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4, 2}));
  quant::LayerRegistry& registry = model.registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    registry.set_ladder_pos(i, i % stride);
  }
  Workspace ws;
  model.set_training(true);
  model.forward(make_inputs(16), ws);
  model.set_training(false);
  return hw::IntegerNetwork::compile(model);
}

float max_row_diff(const Tensor& row, const Tensor& batch, std::size_t i) {
  float diff = 0.0f;
  for (std::size_t c = 0; c < row.dim(0); ++c) {
    diff = std::max(diff, std::abs(row(c) - batch(i, c)));
  }
  return diff;
}

TEST(ServeSwapTest, MidTrafficSwapLosesNothingAndStaysBitIdentical) {
  hw::IntegerNetwork v1 = make_network(3);
  hw::IntegerNetwork v2 = make_network(1);  // all layers at 8 bits
  const Tensor x = make_inputs(48);
  const Tensor ref_v1 = v1.forward(x);
  const Tensor ref_v2 = v2.forward(x);
  ASSERT_NE(max_abs_diff(ref_v1, ref_v2), 0.0f)
      << "v1 and v2 must disagree for version attribution to be testable";

  ServeConfig config;
  config.workers = 2;
  InferenceServer server(config);
  ModelConfig mc;
  mc.max_batch = 4;
  mc.max_delay_us = 200;
  server.load("canary", std::move(v1), mc);

  HarnessOptions options;
  options.producers = 4;
  options.swap_after = 16;  // fire the publish mid-traffic
  options.on_swap = [&] { server.load("canary", std::move(v2), mc); };
  ServeHarness harness(server, "canary");
  const HarnessReport report = harness.run(x, options);

  // Zero lost, zero rejected: every sample got exactly one reply.
  EXPECT_EQ(report.requests, x.dim(0));
  EXPECT_EQ(report.rejected, 0u);
  ASSERT_EQ(report.outputs.size(), x.dim(0));
  ASSERT_EQ(report.versions.size(), x.dim(0));

  // Both versions actually served traffic …
  std::set<std::uint64_t> seen(report.versions.begin(), report.versions.end());
  EXPECT_EQ(seen, (std::set<std::uint64_t>{1, 2}));

  // … and every sample is bit-identical to the direct forward of the
  // version that admitted it.
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    const Tensor& ref = report.versions[i] == 1 ? ref_v1 : ref_v2;
    EXPECT_EQ(max_row_diff(report.outputs[i], ref, i), 0.0f)
        << "sample " << i << " served by v" << report.versions[i];
  }

  // After the run the registry's current version is v2; v1 stays
  // resolvable by number until unloaded.
  const auto versions = server.registry().versions("canary");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].version, 1u);
  EXPECT_FALSE(versions[0].current);
  EXPECT_EQ(versions[1].version, 2u);
  EXPECT_TRUE(versions[1].current);
}

TEST(ServeSwapTest, PinnedHandleKeepsServingItsVersionAfterSwap) {
  InferenceServer server;
  ModelConfig mc;
  mc.max_batch = 1;  // flush immediately: no cross-version batching noise
  const ModelHandle h1 = server.load("pinned", make_network(3), mc);
  server.load("pinned", make_network(1), mc);

  const Tensor x = make_inputs(4);
  const Tensor ref_v1 = h1.network().forward(x);
  const Tensor ref_v2 = server.resolve("pinned").network().forward(x);
  EXPECT_EQ(h1.version(), 1u);
  EXPECT_EQ(server.resolve("pinned").version(), 2u);
  EXPECT_EQ(server.resolve("pinned", 1).version(), 1u);

  const Shape chw{3, 8, 8};
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    Tensor sample(chw);
    const auto src = x.data().subspan(i * shape_numel(chw), shape_numel(chw));
    std::copy(src.begin(), src.end(), sample.data().begin());

    Tensor via_handle, via_name;
    server.submit(h1, sample, via_handle).get();
    server.submit("pinned", sample, via_name).get();
    EXPECT_EQ(max_row_diff(via_handle, ref_v1, i), 0.0f) << i;
    EXPECT_EQ(max_row_diff(via_name, ref_v2, i), 0.0f) << i;
  }
}

TEST(ServeSwapTest, UnloadServesQueuedThenRejectsStaleHandles) {
  InferenceServer server;
  ModelConfig mc;
  mc.max_batch = 16;
  mc.max_delay_us = 60'000'000;  // the unload, not the clock, must flush
  const ModelHandle handle = server.load("retiring", make_network(3), mc);

  const Shape chw{3, 8, 8};
  std::vector<Tensor> inputs, outputs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    inputs.push_back(make_inputs(1).reshaped(chw));
  }
  std::vector<std::future<void>> replies;
  for (std::size_t i = 0; i < 3; ++i) {
    replies.push_back(server.submit(handle, inputs[i], outputs[i]));
  }

  server.unload("retiring");
  // Queued requests admitted before the unload still complete …
  for (auto& reply : replies) reply.get();
  for (const Tensor& out : outputs) EXPECT_EQ(out.rank(), 1u);
  server.drain();
  EXPECT_EQ(server.queue_depth(), 0u);

  // … while the name is delisted and the stale handle rejects by name
  // and version.
  EXPECT_FALSE(server.registry().has("retiring"));
  EXPECT_THROW(server.resolve("retiring"), ModelNotFoundError);
  Tensor late_in = make_inputs(1).reshaped(chw);
  Tensor late_out;
  try {
    server.submit(handle, late_in, late_out);
    FAIL() << "stale handle accepted after unload";
  } catch (const ModelRetiredError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("retiring"), std::string::npos) << message;
    EXPECT_NE(message.find("v1"), std::string::npos) << message;
  }
}

TEST(ServeSwapTest, UnloadOneVersionKeepsTheOtherCurrent) {
  InferenceServer server;
  server.load("partial", make_network(3));
  const ModelHandle h2 = server.load("partial", make_network(1));

  server.unload("partial", 1);
  const auto versions = server.registry().versions("partial");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].version, 2u);
  EXPECT_TRUE(versions[0].current);
  EXPECT_EQ(server.resolve("partial").version(), 2u);
  EXPECT_THROW(server.resolve("partial", 1), ModelNotFoundError);

  // v2 still serves.
  Tensor sample = make_inputs(1).reshaped({3, 8, 8});
  Tensor out;
  server.submit(h2, sample, out).get();
  EXPECT_EQ(out.rank(), 1u);
}

TEST(ServeSwapTest, MidTrafficSwapNeverShedsHighPriorityTraffic) {
  // Hot-swap × priority shed: version cutover under saturating mixed-
  // priority load must not weaken the admission guarantee — a high-
  // priority request is never shed (evicted or door-rejected) while
  // lower-priority work is queued, before, during, or after the swap.
  // Producer 0 carries every high-priority sample (closed loop: one in
  // flight at a time), the other producers hammer with lows against a
  // 2-deep queue, so eviction pressure is constant while the high class
  // can never fill the queue by itself.
  const bool metrics_were = telemetry::metrics_enabled();
  telemetry::set_metrics_enabled(true);
  telemetry::reset_metrics();

  hw::IntegerNetwork v1 = make_network(3);
  hw::IntegerNetwork v2 = make_network(1);
  const Tensor x = make_inputs(64);
  const Tensor ref_v1 = v1.forward(x);
  const Tensor ref_v2 = v2.forward(x);

  ServeConfig config;
  config.workers = 2;
  InferenceServer server(config);
  ModelConfig mc;
  mc.max_batch = 4;
  mc.max_delay_us = 200;
  mc.queue_capacity = 2;  // tiny: lows constantly shed each other
  server.load("contended", std::move(v1), mc);

  HarnessOptions options;
  options.producers = 8;
  options.priorities.assign(x.dim(0), Priority::kLow);
  for (std::size_t i = 0; i < x.dim(0); i += 8) {
    options.priorities[i] = Priority::kHigh;  // producer 0's samples
  }
  options.swap_after = 24;
  options.on_swap = [&] { server.load("contended", std::move(v2), mc); };
  ServeHarness harness(server, "contended");
  const HarnessReport report = harness.run(x, options);

  // The closed loop retries every rejection and eviction, so nothing is
  // lost, and the offered/admitted split stays internally consistent.
  EXPECT_EQ(report.requests, x.dim(0));
  EXPECT_EQ(report.offered, report.admitted + report.rejected);
  EXPECT_EQ(report.admitted, report.requests + report.shed);
  EXPECT_EQ(report.deadline_missed, 0u);

  // The swap fired mid-traffic and both versions stayed bit-identical.
  std::set<std::uint64_t> seen(report.versions.begin(), report.versions.end());
  EXPECT_EQ(seen, (std::set<std::uint64_t>{1, 2}));
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    const Tensor& ref = report.versions[i] == 1 ? ref_v1 : ref_v2;
    EXPECT_EQ(max_row_diff(report.outputs[i], ref, i), 0.0f)
        << "sample " << i << " served by v" << report.versions[i];
  }

  // The SLA guarantee across the cutover: every shed — eviction victim
  // or door rejection — was low-priority.  Both versions share the
  // per-name counters, so this covers the whole run.
  const int shed_high = telemetry::find_named_metric(
      telemetry::NamedKind::kCounter, "serve.contended.shed.high");
  const int shed_low = telemetry::find_named_metric(
      telemetry::NamedKind::kCounter, "serve.contended.shed.low");
  ASSERT_GE(shed_high, 0);
  ASSERT_GE(shed_low, 0);
  EXPECT_EQ(telemetry::named_counter_value(shed_high), 0u);
  EXPECT_EQ(telemetry::named_counter_value(shed_low),
            report.shed + report.rejected);

  server.shutdown();
  telemetry::set_metrics_enabled(metrics_were);
}

TEST(ServeSwapTest, OpenLoopShedsRejectionsInsteadOfRetrying) {
  InferenceServer server;
  ModelConfig mc;
  mc.max_batch = 2;
  mc.max_delay_us = 200;
  mc.queue_capacity = 2;  // tiny: a fast open loop must overrun it
  server.load("openloop", make_network(3), mc);
  const Tensor x = make_inputs(32);
  const Tensor ref = server.resolve("openloop").network().forward(x);

  HarnessOptions options;
  options.producers = 2;
  options.offered_rps = 50'000.0;  // far beyond capacity of queue 2
  ServeHarness harness(server, "openloop");
  const HarnessReport report = harness.run(x, options);

  // Every sample was either answered or shed — never both, never lost.
  EXPECT_EQ(report.requests + report.rejected, x.dim(0));
  ASSERT_EQ(report.outputs.size(), x.dim(0));
  std::size_t answered = 0;
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    if (report.outputs[i].rank() == 0) {
      EXPECT_EQ(report.versions[i], 0u) << i;  // shed
      continue;
    }
    ++answered;
    EXPECT_EQ(report.versions[i], 1u) << i;
    EXPECT_EQ(max_row_diff(report.outputs[i], ref, i), 0.0f) << i;
  }
  EXPECT_EQ(answered, report.requests);
  // Exact latencies are a closed-loop observable; open loop reads the
  // telemetry histograms instead.
  EXPECT_TRUE(report.latency_ns.empty());
}

}  // namespace
}  // namespace ccq::serve
