// Tests for the competition selection-rule ablations (Hedge, EXP3,
// random, memory-only).
#include <gtest/gtest.h>

#include "ccq/core/ccq.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/simple.hpp"

namespace ccq::core {
namespace {

struct RuleFixture {
  data::Dataset train;
  data::Dataset val;
  models::QuantModel model;
};

RuleFixture make_fixture() {
  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.samples_per_class = 30;
  dc.height = dc.width = 8;
  dc.seed = 21;
  data::Dataset train = data::make_synthetic_vision(dc);
  data::Dataset val = train.take_tail(32);
  models::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 2}));
  TrainConfig pre;
  pre.epochs = 4;
  pre.batch_size = 16;
  pre.sgd = {.lr = 0.05, .momentum = 0.9, .weight_decay = 1e-4};
  core::train(model, train, val, pre);
  return RuleFixture{std::move(train), std::move(val), std::move(model)};
}

CcqConfig rule_config(SelectionRule rule) {
  CcqConfig config;
  config.selection = rule;
  config.probes_per_step = 3;
  config.probe_samples = 32;
  config.max_recovery_epochs = 1;
  config.initial_recovery_epochs = 1;
  config.finetune.batch_size = 16;
  config.finetune.sgd = {.lr = 0.02, .momentum = 0.9, .weight_decay = 1e-4};
  config.hybrid_lr.base_lr = 0.02;
  return config;
}

TEST(SelectionRuleTest, NamesAreDistinct) {
  EXPECT_EQ(selection_rule_str(SelectionRule::kHedgeMemory), "hedge+memory");
  EXPECT_EQ(selection_rule_str(SelectionRule::kExp3Memory), "exp3+memory");
  EXPECT_EQ(selection_rule_str(SelectionRule::kRandom), "random");
  EXPECT_EQ(selection_rule_str(SelectionRule::kMemoryOnly), "memory-only");
}

TEST(SelectionRuleTest, EveryRuleReachesTheFloor) {
  for (SelectionRule rule :
       {SelectionRule::kHedgeMemory, SelectionRule::kExp3Memory,
        SelectionRule::kRandom, SelectionRule::kMemoryOnly}) {
    RuleFixture f = make_fixture();
    const CcqResult r =
        run_ccq(f.model, f.train, f.val, rule_config(rule));
    EXPECT_EQ(r.steps.size(), 5u) << selection_rule_str(rule);
    EXPECT_NEAR(r.final_compression, 16.0, 1e-6) << selection_rule_str(rule);
  }
}

TEST(SelectionRuleTest, MemoryOnlyPicksBigLayersFirst) {
  RuleFixture f = make_fixture();
  CcqConfig config = rule_config(SelectionRule::kMemoryOnly);
  config.max_steps = 2;
  config.seed = 5;
  const CcqResult r = run_ccq(f.model, f.train, f.val, config);
  // The two biggest layers carry ~85% of SimpleCNN's weights; with a
  // memory-proportional rule the first pick lands there with high
  // probability — assert the picked layer is above-average size.
  const auto& reg = f.model.registry();
  const double share =
      static_cast<double>(reg.unit(r.steps[0].layer).weight_count) /
      static_cast<double>(reg.total_weights());
  EXPECT_GT(share, 1.0 / static_cast<double>(reg.size()));
}

TEST(SelectionRuleTest, RandomRuleSkipsProbes) {
  // With kRandom the probe loop is skipped entirely; the run must still
  // produce well-formed pick distributions (uniform over awake layers).
  RuleFixture f = make_fixture();
  CcqConfig config = rule_config(SelectionRule::kRandom);
  config.max_steps = 1;
  const CcqResult r = run_ccq(f.model, f.train, f.val, config);
  ASSERT_EQ(r.steps.size(), 1u);
  const auto& probs = r.steps[0].pick_probabilities;
  int nonzero = 0;
  for (double p : probs) {
    if (p > 0.0) {
      ++nonzero;
      EXPECT_NEAR(p, 1.0 / 5.0, 1e-9);  // 5 awake layers
    }
  }
  EXPECT_EQ(nonzero, 5);
}

TEST(SelectionRuleTest, Exp3UpdatesAreImportanceWeighted) {
  // Indirect check: an EXP3 run completes and its pick distributions stay
  // valid simplices (the importance weighting must not blow up weights).
  RuleFixture f = make_fixture();
  const CcqResult r =
      run_ccq(f.model, f.train, f.val, rule_config(SelectionRule::kExp3Memory));
  for (const auto& step : r.steps) {
    double total = 0.0;
    for (double p : step.pick_probabilities) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace ccq::core
